// Chaos suite (ISSUE 2): inject solver and price-feed faults at every
// slot of a 24-slot horizon, across every policy variant, and prove the
// rolling-horizon simulation always finishes with inventory-balanced
// plans and degradation telemetry that matches the injection schedule
// exactly.  `ctest -R Chaos` runs just this suite (the CI chaos job).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/deadline.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "core/demand.hpp"
#include "core/policies.hpp"
#include "core/rolling_horizon.hpp"
#include "market/trace_generator.hpp"

namespace {

using namespace rrp::core;
using rrp::market::VmClass;
using rrp::testing::FaultInjector;
using rrp::testing::PriceFaultKind;

constexpr std::size_t kHorizon = 24;

SimulationInputs chaos_inputs(std::uint64_t seed = 11) {
  const auto trace = rrp::market::generate_trace(VmClass::C1Medium, seed);
  const auto hourly = trace.hourly();
  const std::size_t history_hours = 240;  // short fit, fast chaos runs
  SimulationInputs in;
  in.vm = VmClass::C1Medium;
  in.history.assign(hourly.begin(),
                    hourly.begin() + static_cast<long>(history_hours));
  in.actual_spot.assign(
      hourly.begin() + static_cast<long>(history_hours),
      hourly.begin() + static_cast<long>(history_hours + kHorizon));
  rrp::Rng rng(seed ^ 0xabcdefULL);
  in.demand = generate_demand(kHorizon, DemandConfig{}, rng);
  return in;
}

std::vector<PolicyConfig> all_policies() {
  std::vector<PolicyConfig> policies = figure12a_policies();
  policies.push_back(no_plan_policy());
  policies.push_back(oracle_policy());
  policies.push_back(sto_markov_policy());
  return policies;
}

// Replays the executed slots against the inputs: inventory must balance
// (never negative, matches the per-slot record) and the realised compute
// cost must equal the sum of settled prices.
void expect_inventory_balanced(const SimulationInputs& in,
                               const SimulationResult& r) {
  ASSERT_EQ(r.slots.size(), in.horizon());
  double store = in.initial_storage;
  double compute = 0.0;
  std::size_t rentals = 0;
  for (std::size_t t = 0; t < r.slots.size(); ++t) {
    const SlotRecord& rec = r.slots[t];
    EXPECT_GE(rec.alpha, 0.0) << "slot " << t;
    store += rec.alpha - in.demand[t];
    EXPECT_GT(store, -1e-6) << "unserved demand at slot " << t;
    store = std::max(store, 0.0);
    EXPECT_NEAR(rec.inventory, store, 1e-9) << "slot " << t;
    if (rec.rented) {
      EXPECT_GT(rec.price_paid, 0.0) << "slot " << t;
      compute += rec.price_paid;
      ++rentals;
    } else {
      EXPECT_EQ(rec.price_paid, 0.0) << "slot " << t;
    }
  }
  EXPECT_NEAR(r.cost.compute, compute, 1e-9);
  EXPECT_EQ(r.rentals, rentals);
  EXPECT_TRUE(std::isfinite(r.total_cost()));
}

void expect_counters_consistent(const SimulationResult& r) {
  EXPECT_EQ(r.degraded_replans(), r.fallbacks.size());
  EXPECT_EQ(r.fallbacks.size(), r.replan_timeouts +
                                    r.replan_numerical_failures +
                                    r.replans_rejected);
  EXPECT_EQ(r.fallbacks.size(), r.fallback_reused_tail +
                                    r.fallback_heuristic +
                                    r.fallback_on_demand);
}

TEST(Chaos, SolverFaultAtEverySlotEveryPolicyCompletes) {
  const SimulationInputs in = chaos_inputs();
  // Timeouts at even slots, synthetic numerical failures at odd ones.
  FaultInjector inj(7);
  for (std::size_t t = 0; t < kHorizon; ++t) {
    if (t % 2 == 0)
      inj.inject_solver_timeout(t);
    else
      inj.inject_solver_numerical_failure(t);
  }

  for (const PolicyConfig& policy : all_policies()) {
    SCOPED_TRACE(policy.name);
    const SimulationResult r = simulate_policy(in, policy, &inj);
    expect_inventory_balanced(in, r);
    expect_counters_consistent(r);
    EXPECT_TRUE(r.price_faults.empty());

    if (policy.planner == PlannerKind::NoPlan) {
      // Never re-plans, so the schedule is never consulted.
      EXPECT_EQ(r.fallbacks.size(), 0u);
      continue;
    }

    // Every slot attempts a re-plan (replan_every == 1) and every
    // attempt hits an injected fault: exactly one FallbackEvent per
    // slot, reasons matching the parity of the schedule.
    ASSERT_EQ(r.fallbacks.size(), kHorizon);
    EXPECT_EQ(r.replan_timeouts, kHorizon / 2);
    EXPECT_EQ(r.replan_numerical_failures, kHorizon / 2);
    EXPECT_EQ(r.replans_rejected, 0u);
    for (std::size_t t = 0; t < kHorizon; ++t) {
      const FallbackEvent& ev = r.fallbacks[t];
      EXPECT_EQ(ev.slot, t);
      EXPECT_EQ(ev.reason, t % 2 == 0 ? FallbackReason::SolverTimeout
                                      : FallbackReason::NumericalFailure);
    }

    // The ladder: a fresh Wagner-Whitin plan whenever the previous one
    // is exhausted (every `lookahead` slots), its tail reused otherwise;
    // the on-demand rung is never needed.
    const std::size_t heuristic_plans = kHorizon / policy.lookahead;
    EXPECT_EQ(r.fallback_heuristic, heuristic_plans);
    EXPECT_EQ(r.fallback_reused_tail, kHorizon - heuristic_plans);
    EXPECT_EQ(r.fallback_on_demand, 0u);
    for (const FallbackEvent& ev : r.fallbacks) {
      const bool exhausted = ev.slot % policy.lookahead == 0;
      EXPECT_EQ(ev.action, exhausted ? FallbackAction::HeuristicPlan
                                     : FallbackAction::ReusedPlanTail)
          << "slot " << ev.slot;
    }
  }
}

TEST(Chaos, PriceFeedFaultAtEverySlotIsSanitized) {
  const SimulationInputs in = chaos_inputs();
  const double lambda =
      rrp::market::info(in.vm).on_demand_hourly;
  FaultInjector inj(13);
  for (std::size_t t = 0; t < kHorizon; ++t) {
    switch (t % 4) {
      case 0: inj.inject_price_gap(t); break;
      case 1: inj.inject_price_nan(t); break;
      case 2: inj.inject_price_spike(t, 1000.0); break;
      default: inj.inject_price_delay(t); break;
    }
  }

  for (const PolicyConfig& policy : all_policies()) {
    SCOPED_TRACE(policy.name);
    const SimulationResult r = simulate_policy(in, policy, &inj);
    expect_inventory_balanced(in, r);
    expect_counters_consistent(r);
    // Feed faults alone never degrade planning.
    EXPECT_EQ(r.fallbacks.size(), 0u);

    // One telemetry record per faulted tick, in slot order.
    ASSERT_EQ(r.price_faults.size(), kHorizon);
    for (std::size_t t = 0; t < kHorizon; ++t) {
      const PriceFeedEvent& ev = r.price_faults[t];
      EXPECT_EQ(ev.slot, t);
      switch (t % 4) {
        case 0:
          EXPECT_EQ(ev.kind, PriceFaultKind::Gap);
          EXPECT_TRUE(std::isnan(ev.raw));
          break;
        case 1:
          EXPECT_EQ(ev.kind, PriceFaultKind::Nan);
          EXPECT_TRUE(std::isnan(ev.raw));
          break;
        case 2:
          EXPECT_EQ(ev.kind, PriceFaultKind::Spike);
          EXPECT_NEAR(ev.raw, in.actual_spot[t] * 1000.0, 1e-9);
          break;
        default:
          EXPECT_EQ(ev.kind, PriceFaultKind::Delayed);
          EXPECT_TRUE(std::isfinite(ev.raw));
          break;
      }
      // Whatever arrived, the models only ever see a plausible price.
      EXPECT_TRUE(std::isfinite(ev.used));
      EXPECT_GT(ev.used, 0.0);
      EXPECT_LE(ev.used, 10.0 * lambda);
    }
  }
}

TEST(Chaos, CombinedSolverAndPriceFaultsEverySlot) {
  const SimulationInputs in = chaos_inputs();
  FaultInjector inj(17);
  for (std::size_t t = 0; t < kHorizon; ++t) {
    if (t % 3 == 0)
      inj.inject_solver_numerical_failure(t);
    else
      inj.inject_solver_timeout(t);
    inj.inject_price_spike(t);  // seeded outlier factor in [20, 100]
  }

  for (const PolicyConfig& policy : all_policies()) {
    SCOPED_TRACE(policy.name);
    const SimulationResult r = simulate_policy(in, policy, &inj);
    expect_inventory_balanced(in, r);
    expect_counters_consistent(r);
    ASSERT_EQ(r.price_faults.size(), kHorizon);
    if (policy.planner == PlannerKind::NoPlan) continue;
    ASSERT_EQ(r.fallbacks.size(), kHorizon);
    EXPECT_EQ(r.replan_numerical_failures, (kHorizon + 2) / 3);
    EXPECT_EQ(r.replan_timeouts, kHorizon - (kHorizon + 2) / 3);
  }
}

TEST(Chaos, RealDeadlinePathDegradesOnMilpBackend) {
  // Exercises the production deadline plumbing (not the injector): a
  // fake clock advancing one second per poll expires the tiny re-plan
  // budget at every solve entry, so every re-plan times out and the
  // ladder serves all 24 slots.
  const SimulationInputs in = chaos_inputs();
  rrp::common::FakeClock clock;
  clock.set_auto_advance(1.0);
  PolicyConfig policy = det_exp_mean_policy();
  policy.backend = PlannerBackend::Milp;
  policy.replan_time_limit = 0.5;
  policy.clock = &clock;

  const SimulationResult r = simulate_policy(in, policy);
  expect_inventory_balanced(in, r);
  expect_counters_consistent(r);
  ASSERT_EQ(r.fallbacks.size(), kHorizon);
  EXPECT_EQ(r.replan_timeouts, kHorizon);
  EXPECT_EQ(r.fallback_heuristic, 1u);            // slot 0 plans fresh
  EXPECT_EQ(r.fallback_reused_tail, kHorizon - 1);
  for (const FallbackEvent& ev : r.fallbacks)
    EXPECT_EQ(ev.reason, FallbackReason::SolverTimeout);
  EXPECT_GT(clock.reads(), 0u);
}

TEST(Chaos, GenerousDeadlineMatchesUnlimitedRun) {
  const SimulationInputs in = chaos_inputs();
  PolicyConfig limited = det_exp_mean_policy();
  limited.replan_time_limit = 3600.0;
  const SimulationResult a = simulate_policy(in, limited);
  const SimulationResult b = simulate_policy(in, det_exp_mean_policy());
  EXPECT_DOUBLE_EQ(a.total_cost(), b.total_cost());
  EXPECT_EQ(a.fallbacks.size(), 0u);
}

TEST(Chaos, FaultedRunsAreDeterministic) {
  const SimulationInputs in = chaos_inputs();
  for (int pass = 0; pass < 2; ++pass) {
    FaultInjector a(23), b(23);
    for (std::size_t t = 0; t < kHorizon; t += 2) {
      a.inject_solver_timeout(t);
      b.inject_solver_timeout(t);
      a.inject_price_spike(t + 1);
      b.inject_price_spike(t + 1);
    }
    const PolicyConfig policy = sto_exp_mean_policy();
    const SimulationResult ra = simulate_policy(in, policy, &a);
    const SimulationResult rb = simulate_policy(in, policy, &b);
    EXPECT_DOUBLE_EQ(ra.total_cost(), rb.total_cost());
    ASSERT_EQ(ra.fallbacks.size(), rb.fallbacks.size());
    ASSERT_EQ(ra.price_faults.size(), rb.price_faults.size());
    for (std::size_t i = 0; i < ra.price_faults.size(); ++i)
      EXPECT_DOUBLE_EQ(ra.price_faults[i].used, rb.price_faults[i].used);
  }
}

TEST(Chaos, SingleSlotFaultOnlyDegradesThatSlot) {
  const SimulationInputs in = chaos_inputs();
  FaultInjector inj;
  inj.inject_solver_timeout(5);
  const PolicyConfig policy = det_exp_mean_policy();
  const SimulationResult r = simulate_policy(in, policy, &inj);
  expect_inventory_balanced(in, r);
  ASSERT_EQ(r.fallbacks.size(), 1u);
  EXPECT_EQ(r.fallbacks[0].slot, 5u);
  EXPECT_EQ(r.fallbacks[0].reason, FallbackReason::SolverTimeout);
  // Slot 4's fresh plan still covers slot 5.
  EXPECT_EQ(r.fallbacks[0].action, FallbackAction::ReusedPlanTail);
  EXPECT_EQ(r.replan_timeouts, 1u);
}

}  // namespace
