#include "common/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace {

using rrp::testing::FaultInjector;
using rrp::testing::PriceFault;
using rrp::testing::PriceFaultKind;
using rrp::testing::SolverFaultKind;

TEST(FaultInjector, EmptyScheduleReportsNoFaults) {
  FaultInjector inj;
  EXPECT_FALSE(inj.solver_fault(0).has_value());
  EXPECT_FALSE(inj.price_fault(0).has_value());
  EXPECT_EQ(inj.num_solver_faults(), 0u);
  EXPECT_EQ(inj.num_price_faults(), 0u);
  EXPECT_FALSE(inj.consume_lp_fault());
}

TEST(FaultInjector, SolverFaultsReturnedAtConfiguredSlotsOnly) {
  FaultInjector inj;
  inj.inject_solver_timeout(3);
  inj.inject_solver_numerical_failure(7);
  ASSERT_TRUE(inj.solver_fault(3).has_value());
  EXPECT_EQ(*inj.solver_fault(3), SolverFaultKind::Timeout);
  ASSERT_TRUE(inj.solver_fault(7).has_value());
  EXPECT_EQ(*inj.solver_fault(7), SolverFaultKind::NumericalFailure);
  EXPECT_FALSE(inj.solver_fault(4).has_value());
  EXPECT_EQ(inj.num_solver_faults(), 2u);
}

TEST(FaultInjector, ReinjectingASlotOverwrites) {
  FaultInjector inj;
  inj.inject_solver_timeout(5);
  inj.inject_solver_numerical_failure(5);
  EXPECT_EQ(inj.num_solver_faults(), 1u);
  EXPECT_EQ(*inj.solver_fault(5), SolverFaultKind::NumericalFailure);

  inj.inject_price_gap(5);
  inj.inject_price_delay(5);
  EXPECT_EQ(inj.num_price_faults(), 1u);
  EXPECT_EQ(inj.price_fault(5)->kind, PriceFaultKind::Delayed);
}

TEST(FaultInjector, PriceFaultKindsRoundTrip) {
  FaultInjector inj;
  inj.inject_price_gap(0);
  inj.inject_price_nan(1);
  inj.inject_price_spike(2, 50.0);
  inj.inject_price_delay(3);
  EXPECT_EQ(inj.price_fault(0)->kind, PriceFaultKind::Gap);
  EXPECT_EQ(inj.price_fault(1)->kind, PriceFaultKind::Nan);
  EXPECT_EQ(inj.price_fault(2)->kind, PriceFaultKind::Spike);
  EXPECT_DOUBLE_EQ(inj.price_fault(2)->spike_factor, 50.0);
  EXPECT_EQ(inj.price_fault(3)->kind, PriceFaultKind::Delayed);
  EXPECT_EQ(inj.num_price_faults(), 4u);
}

TEST(FaultInjector, SeededSpikeFactorIsDeterministicAndOutlier) {
  FaultInjector a(42);
  FaultInjector b(42);
  FaultInjector c(43);
  for (std::size_t slot = 0; slot < 8; ++slot) {
    a.inject_price_spike(slot);
    b.inject_price_spike(slot);
    c.inject_price_spike(slot);
  }
  bool any_differs = false;
  for (std::size_t slot = 0; slot < 8; ++slot) {
    const double fa = a.price_fault(slot)->spike_factor;
    const double fb = b.price_fault(slot)->spike_factor;
    EXPECT_DOUBLE_EQ(fa, fb) << "same seed must give identical factors";
    EXPECT_GE(fa, 20.0);
    EXPECT_LE(fa, 100.0);
    if (fa != c.price_fault(slot)->spike_factor) any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "different seeds should diverge";
}

TEST(FaultInjector, ExplicitSpikeFactorValidated) {
  FaultInjector inj;
  EXPECT_THROW(inj.inject_price_spike(0, 0.0), rrp::ContractViolation);
  EXPECT_THROW(inj.inject_price_spike(0, -2.0), rrp::ContractViolation);
  EXPECT_THROW(inj.inject_price_spike(0, std::nan("")),
               rrp::ContractViolation);
}

TEST(FaultInjector, ArmedLpFailuresConsumeOneAtATime) {
  FaultInjector inj;
  inj.arm_lp_failures(2);
  EXPECT_EQ(inj.armed_lp_failures(), 2u);
  EXPECT_TRUE(inj.consume_lp_fault());
  EXPECT_EQ(inj.armed_lp_failures(), 1u);
  EXPECT_TRUE(inj.consume_lp_fault());
  EXPECT_FALSE(inj.consume_lp_fault());
  EXPECT_FALSE(inj.consume_lp_fault());
  EXPECT_EQ(inj.armed_lp_failures(), 0u);
}

TEST(FaultInjectorRevocation, QueriesReturnArmedSlotsOnly) {
  FaultInjector inj;
  EXPECT_FALSE(inj.revocation_fault(0).has_value());
  EXPECT_EQ(inj.num_revocation_faults(), 0u);
  inj.inject_revocation(2, 0.4);
  inj.inject_revocation_storm(5, 0.7);
  ASSERT_TRUE(inj.revocation_fault(2).has_value());
  EXPECT_FALSE(inj.revocation_fault(2)->storm);
  EXPECT_DOUBLE_EQ(inj.revocation_fault(2)->fraction, 0.4);
  ASSERT_TRUE(inj.revocation_fault(5).has_value());
  EXPECT_TRUE(inj.revocation_fault(5)->storm);
  EXPECT_DOUBLE_EQ(inj.revocation_fault(5)->fraction, 0.7);
  EXPECT_FALSE(inj.revocation_fault(3).has_value());
  EXPECT_EQ(inj.num_revocation_faults(), 2u);
}

TEST(FaultInjectorRevocation, ReinjectingASlotOverwrites) {
  FaultInjector inj;
  inj.inject_revocation(4, 0.2);
  inj.inject_revocation_storm(4, 0.8);
  EXPECT_EQ(inj.num_revocation_faults(), 1u);
  EXPECT_TRUE(inj.revocation_fault(4)->storm);
  EXPECT_DOUBLE_EQ(inj.revocation_fault(4)->fraction, 0.8);
}

TEST(FaultInjectorRevocation, ExplicitFractionValidated) {
  FaultInjector inj;
  EXPECT_THROW(inj.inject_revocation(0, 0.0), rrp::ContractViolation);
  EXPECT_THROW(inj.inject_revocation(0, 1.0), rrp::ContractViolation);
  EXPECT_THROW(inj.inject_revocation(0, std::nan("")),
               rrp::ContractViolation);
  EXPECT_THROW(inj.inject_revocation_storm(0, -0.5),
               rrp::ContractViolation);
}

TEST(FaultInjectorRevocation, SeededFractionsStayInsideTheSlot) {
  FaultInjector inj(77);
  for (std::size_t t = 0; t < 50; ++t) inj.inject_revocation(t);
  for (std::size_t t = 0; t < 50; ++t) {
    const auto f = inj.revocation_fault(t);
    ASSERT_TRUE(f.has_value());
    EXPECT_GE(f->fraction, 0.05);
    EXPECT_LT(f->fraction, 0.95);
  }
}

TEST(FaultInjectorRevocation, ScheduleIsAPureFunctionOfSeed) {
  FaultInjector a(123), b(123), c(456);
  const std::size_t armed_a = a.schedule_revocations(200, 0.3, 0.5);
  const std::size_t armed_b = b.schedule_revocations(200, 0.3, 0.5);
  EXPECT_EQ(armed_a, armed_b);
  EXPECT_GT(armed_a, 0u);
  (void)c.schedule_revocations(200, 0.3, 0.5);
  bool any_differs = false;
  for (std::size_t t = 0; t < 200; ++t) {
    const auto fa = a.revocation_fault(t);
    const auto fb = b.revocation_fault(t);
    ASSERT_EQ(fa.has_value(), fb.has_value()) << "slot " << t;
    if (fa.has_value()) {
      EXPECT_EQ(fa->storm, fb->storm) << "slot " << t;
      EXPECT_DOUBLE_EQ(fa->fraction, fb->fraction) << "slot " << t;
    }
    if (fa.has_value() != c.revocation_fault(t).has_value())
      any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "different seeds should diverge";
}

TEST(FaultInjectorRevocation, ScheduleRatesValidated) {
  FaultInjector inj;
  EXPECT_THROW(inj.schedule_revocations(10, -0.1, 0.0),
               rrp::ContractViolation);
  EXPECT_THROW(inj.schedule_revocations(10, 0.5, 1.5),
               rrp::ContractViolation);
  EXPECT_EQ(inj.schedule_revocations(10, 0.0, 0.0), 0u);
}

TEST(FaultInjector, ToStringNamesEveryKind) {
  using rrp::testing::to_string;
  EXPECT_STREQ(to_string(SolverFaultKind::Timeout), "solver-timeout");
  EXPECT_STREQ(to_string(SolverFaultKind::NumericalFailure),
               "numerical-failure");
  EXPECT_STREQ(to_string(PriceFaultKind::Gap), "price-gap");
  EXPECT_STREQ(to_string(PriceFaultKind::Nan), "price-nan");
  EXPECT_STREQ(to_string(PriceFaultKind::Spike), "price-spike");
  EXPECT_STREQ(to_string(PriceFaultKind::Delayed), "price-delayed");
}

}  // namespace
