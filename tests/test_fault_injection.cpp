#include "common/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace {

using rrp::testing::FaultInjector;
using rrp::testing::PriceFault;
using rrp::testing::PriceFaultKind;
using rrp::testing::SolverFaultKind;

TEST(FaultInjector, EmptyScheduleReportsNoFaults) {
  FaultInjector inj;
  EXPECT_FALSE(inj.solver_fault(0).has_value());
  EXPECT_FALSE(inj.price_fault(0).has_value());
  EXPECT_EQ(inj.num_solver_faults(), 0u);
  EXPECT_EQ(inj.num_price_faults(), 0u);
  EXPECT_FALSE(inj.consume_lp_fault());
}

TEST(FaultInjector, SolverFaultsReturnedAtConfiguredSlotsOnly) {
  FaultInjector inj;
  inj.inject_solver_timeout(3);
  inj.inject_solver_numerical_failure(7);
  ASSERT_TRUE(inj.solver_fault(3).has_value());
  EXPECT_EQ(*inj.solver_fault(3), SolverFaultKind::Timeout);
  ASSERT_TRUE(inj.solver_fault(7).has_value());
  EXPECT_EQ(*inj.solver_fault(7), SolverFaultKind::NumericalFailure);
  EXPECT_FALSE(inj.solver_fault(4).has_value());
  EXPECT_EQ(inj.num_solver_faults(), 2u);
}

TEST(FaultInjector, ReinjectingASlotOverwrites) {
  FaultInjector inj;
  inj.inject_solver_timeout(5);
  inj.inject_solver_numerical_failure(5);
  EXPECT_EQ(inj.num_solver_faults(), 1u);
  EXPECT_EQ(*inj.solver_fault(5), SolverFaultKind::NumericalFailure);

  inj.inject_price_gap(5);
  inj.inject_price_delay(5);
  EXPECT_EQ(inj.num_price_faults(), 1u);
  EXPECT_EQ(inj.price_fault(5)->kind, PriceFaultKind::Delayed);
}

TEST(FaultInjector, PriceFaultKindsRoundTrip) {
  FaultInjector inj;
  inj.inject_price_gap(0);
  inj.inject_price_nan(1);
  inj.inject_price_spike(2, 50.0);
  inj.inject_price_delay(3);
  EXPECT_EQ(inj.price_fault(0)->kind, PriceFaultKind::Gap);
  EXPECT_EQ(inj.price_fault(1)->kind, PriceFaultKind::Nan);
  EXPECT_EQ(inj.price_fault(2)->kind, PriceFaultKind::Spike);
  EXPECT_DOUBLE_EQ(inj.price_fault(2)->spike_factor, 50.0);
  EXPECT_EQ(inj.price_fault(3)->kind, PriceFaultKind::Delayed);
  EXPECT_EQ(inj.num_price_faults(), 4u);
}

TEST(FaultInjector, SeededSpikeFactorIsDeterministicAndOutlier) {
  FaultInjector a(42);
  FaultInjector b(42);
  FaultInjector c(43);
  for (std::size_t slot = 0; slot < 8; ++slot) {
    a.inject_price_spike(slot);
    b.inject_price_spike(slot);
    c.inject_price_spike(slot);
  }
  bool any_differs = false;
  for (std::size_t slot = 0; slot < 8; ++slot) {
    const double fa = a.price_fault(slot)->spike_factor;
    const double fb = b.price_fault(slot)->spike_factor;
    EXPECT_DOUBLE_EQ(fa, fb) << "same seed must give identical factors";
    EXPECT_GE(fa, 20.0);
    EXPECT_LE(fa, 100.0);
    if (fa != c.price_fault(slot)->spike_factor) any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "different seeds should diverge";
}

TEST(FaultInjector, ExplicitSpikeFactorValidated) {
  FaultInjector inj;
  EXPECT_THROW(inj.inject_price_spike(0, 0.0), rrp::ContractViolation);
  EXPECT_THROW(inj.inject_price_spike(0, -2.0), rrp::ContractViolation);
  EXPECT_THROW(inj.inject_price_spike(0, std::nan("")),
               rrp::ContractViolation);
}

TEST(FaultInjector, ArmedLpFailuresConsumeOneAtATime) {
  FaultInjector inj;
  inj.arm_lp_failures(2);
  EXPECT_EQ(inj.armed_lp_failures(), 2u);
  EXPECT_TRUE(inj.consume_lp_fault());
  EXPECT_EQ(inj.armed_lp_failures(), 1u);
  EXPECT_TRUE(inj.consume_lp_fault());
  EXPECT_FALSE(inj.consume_lp_fault());
  EXPECT_FALSE(inj.consume_lp_fault());
  EXPECT_EQ(inj.armed_lp_failures(), 0u);
}

TEST(FaultInjector, ToStringNamesEveryKind) {
  using rrp::testing::to_string;
  EXPECT_STREQ(to_string(SolverFaultKind::Timeout), "solver-timeout");
  EXPECT_STREQ(to_string(SolverFaultKind::NumericalFailure),
               "numerical-failure");
  EXPECT_STREQ(to_string(PriceFaultKind::Gap), "price-gap");
  EXPECT_STREQ(to_string(PriceFaultKind::Nan), "price-nan");
  EXPECT_STREQ(to_string(PriceFaultKind::Spike), "price-spike");
  EXPECT_STREQ(to_string(PriceFaultKind::Delayed), "price-delayed");
}

}  // namespace
