// Compiled with RRP_OBSERVABILITY_FORCE_OFF (see tests/CMakeLists.txt)
// to prove the instrumentation macros are true no-ops in stripped
// builds: value arguments must never be evaluated — the zero-overhead
// half of the observability contract (DESIGN.md "Observability").
#include "obs/obs.hpp"

#if RRP_OBSERVABILITY_ENABLED
#error "obs_off_probe.cpp must be compiled with observability off"
#endif

namespace rrp_test {

/// Returns true if any disabled instrumentation macro evaluated its
/// value argument.
bool obs_off_probe_evaluated() {
  bool evaluated = false;
  auto touch = [&evaluated] {
    evaluated = true;
    return 1;
  };
  RRP_COUNTER_ADD("probe.counter", touch());
  RRP_GAUGE_SET("probe.gauge", touch());
  RRP_GAUGE_ADD("probe.gauge", touch());
  RRP_HISTOGRAM_OBSERVE("probe.histogram", touch(), {1.0, 2.0});
  RRP_TRACE_SPAN("probe.span");
  RRP_TRACE_ARG("probe", touch());
  RRP_OBS_EVENT("probe", "event", {{"value", touch()}});
  return evaluated;
}

}  // namespace rrp_test
