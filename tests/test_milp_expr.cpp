#include "milp/expr.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace {

using namespace rrp::milp;

constexpr double kInf = std::numeric_limits<double>::infinity();

Var v(std::size_t id) { return Var{id}; }

TEST(LinExpr, ConstantAndVarConstruction) {
  LinExpr c = 5.0;
  EXPECT_TRUE(c.terms().empty());
  EXPECT_DOUBLE_EQ(c.constant(), 5.0);
  LinExpr x = v(3);
  ASSERT_EQ(x.terms().size(), 1u);
  EXPECT_EQ(x.terms()[0].var, 3u);
  EXPECT_DOUBLE_EQ(x.terms()[0].coeff, 1.0);
}

TEST(LinExpr, ArithmeticComposition) {
  LinExpr e = 2.0 * LinExpr(v(0)) + 3.0 * LinExpr(v(1)) - LinExpr(v(0)) + 4.0;
  e.normalize();
  ASSERT_EQ(e.terms().size(), 2u);
  EXPECT_DOUBLE_EQ(e.terms()[0].coeff, 1.0);  // var 0: 2 - 1
  EXPECT_DOUBLE_EQ(e.terms()[1].coeff, 3.0);
  EXPECT_DOUBLE_EQ(e.constant(), 4.0);
}

TEST(LinExpr, NormalizeDropsZeroCoefficients) {
  LinExpr e = LinExpr(v(0)) - LinExpr(v(0)) + LinExpr(v(1));
  e.normalize();
  ASSERT_EQ(e.terms().size(), 1u);
  EXPECT_EQ(e.terms()[0].var, 1u);
}

TEST(LinExpr, ScalarMultiplicationBothSides) {
  LinExpr a = 2.0 * LinExpr(v(0));
  LinExpr b = LinExpr(v(0)) * 2.0;
  a.normalize();
  b.normalize();
  EXPECT_DOUBLE_EQ(a.terms()[0].coeff, b.terms()[0].coeff);
}

TEST(LinExpr, UnaryNegation) {
  LinExpr e = -(2.0 * LinExpr(v(0)) + 1.0);
  e.normalize();
  EXPECT_DOUBLE_EQ(e.terms()[0].coeff, -2.0);
  EXPECT_DOUBLE_EQ(e.constant(), -1.0);
}

TEST(Constraint, LessEqualAgainstScalar) {
  Constraint c = LinExpr(v(0)) + LinExpr(v(1)) <= 5.0;
  EXPECT_EQ(c.lo, -kInf);
  EXPECT_DOUBLE_EQ(c.hi, 5.0);
}

TEST(Constraint, GreaterEqualAgainstScalar) {
  Constraint c = LinExpr(v(0)) >= 2.0;
  EXPECT_DOUBLE_EQ(c.lo, 2.0);
  EXPECT_EQ(c.hi, kInf);
}

TEST(Constraint, EqualityAgainstScalar) {
  Constraint c = LinExpr(v(0)) == 3.0;
  EXPECT_DOUBLE_EQ(c.lo, 3.0);
  EXPECT_DOUBLE_EQ(c.hi, 3.0);
}

TEST(Constraint, ExprVsExprFoldsRhs) {
  // x <= y + 1 becomes x - y - 1 <= 0.
  Constraint c = LinExpr(v(0)) <= LinExpr(v(1)) + 1.0;
  c.expr.normalize();
  EXPECT_DOUBLE_EQ(c.expr.constant(), -1.0);
  ASSERT_EQ(c.expr.terms().size(), 2u);
  EXPECT_DOUBLE_EQ(c.hi, 0.0);
}

TEST(Constraint, ExprEqualityVsExpr) {
  Constraint c = LinExpr(v(0)) + 2.0 == LinExpr(v(1));
  c.expr.normalize();
  EXPECT_DOUBLE_EQ(c.lo, 0.0);
  EXPECT_DOUBLE_EQ(c.hi, 0.0);
  EXPECT_DOUBLE_EQ(c.expr.constant(), 2.0);
}

}  // namespace
