// Property test of the branch & bound anytime contract (ISSUE 2): for
// random lot-sizing MILPs under arbitrary node and time limits, the
// solver must always return either a feasible, integral,
// bound-consistent incumbent or an honest NoIncumbent — never a
// malformed result — as long as it may explore at least one node.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/deadline.hpp"
#include "common/rng.hpp"
#include "milp/branch_and_bound.hpp"

namespace {

using namespace rrp::milp;

// A random uncapacitated-ish lot-sizing instance: binary setup y_t,
// continuous order alpha_t <= M*y_t, non-negative inventory carried
// between slots.  Always feasible (order every slot's demand).
struct LotSizing {
  std::vector<double> demand, price;
  double setup_cost = 0.0, storage_cost = 0.0, big_m = 0.0;
  std::vector<Var> y, alpha, beta;
  Model model;

  explicit LotSizing(rrp::Rng& rng) {
    const int horizon = 3 + static_cast<int>(rng.uniform(0.0, 5.0));
    setup_cost = rng.uniform(1.0, 8.0);
    storage_cost = rng.uniform(0.05, 0.5);
    double total_demand = 0.0;
    for (int t = 0; t < horizon; ++t) {
      demand.push_back(std::floor(rng.uniform(0.0, 6.0)));
      price.push_back(rng.uniform(0.5, 4.0));
      total_demand += demand.back();
    }
    big_m = total_demand + 1.0;
    LinExpr cost;
    for (int t = 0; t < horizon; ++t) {
      y.push_back(model.add_binary());
      alpha.push_back(model.add_continuous(0.0, big_m));
      beta.push_back(model.add_continuous(0.0, big_m));
      cost += setup_cost * LinExpr(y[t]) + price[t] * LinExpr(alpha[t]) +
              storage_cost * LinExpr(beta[t]);
      model.add_constraint(LinExpr(alpha[t]) - big_m * LinExpr(y[t]) <= 0.0);
      LinExpr balance = LinExpr(alpha[t]) - LinExpr(beta[t]);
      if (t > 0) balance += LinExpr(beta[t - 1]);
      model.add_constraint(std::move(balance) == demand[t]);
    }
    model.set_objective(std::move(cost), Objective::Minimize);
  }

  // Replays the incumbent against the original data (not through the
  // solver), so a malformed point cannot self-certify.
  void expect_feasible(const std::vector<double>& x) const {
    const double tol = 1e-5;
    double inventory = 0.0;
    for (std::size_t t = 0; t < demand.size(); ++t) {
      const double yt = x[y[t].id];
      const double at = x[alpha[t].id];
      EXPECT_NEAR(yt, std::round(yt), tol) << "y[" << t << "] not integral";
      EXPECT_GE(at, -tol);
      EXPECT_LE(at, big_m * yt + tol) << "order without setup at " << t;
      inventory += at - demand[t];
      EXPECT_GE(inventory, -tol) << "negative inventory at " << t;
      EXPECT_NEAR(x[beta[t].id], inventory, tol);
    }
  }

  double objective_of(const std::vector<double>& x) const {
    double cost = 0.0;
    for (std::size_t t = 0; t < demand.size(); ++t)
      cost += setup_cost * x[y[t].id] + price[t] * x[alpha[t].id] +
              storage_cost * x[beta[t].id];
    return cost;
  }
};

TEST(AnytimeProperty, AnyNodeOrTimeLimitYieldsWellFormedResult) {
  rrp::Rng rng(2024);
  int time_limited = 0, node_limited = 0, optimal = 0;
  for (int trial = 0; trial < 60; ++trial) {
    LotSizing inst(rng);
    const MipResult exact = solve(inst.model);
    ASSERT_EQ(exact.status, MipStatus::Optimal) << "trial " << trial;

    BnbOptions opt;
    // Random node budget >= 1 and a fake-clock deadline expiring after a
    // random number of polls; either limit may bite first.
    opt.max_nodes = 1 + static_cast<std::size_t>(rng.uniform(0.0, 12.0));
    rrp::common::FakeClock clock;
    clock.set_auto_advance(1.0);
    const double budget = rng.uniform(2.0, 120.0);
    opt.deadline = rrp::common::Deadline::after(budget, clock);
    opt.rounding_heuristic = rng.uniform(0.0, 1.0) < 0.5;

    const MipResult r = solve(inst.model, opt);
    switch (r.status) {
      case MipStatus::Optimal:
        ++optimal;
        EXPECT_NEAR(r.objective, exact.objective, 1e-5);
        break;
      case MipStatus::TimeLimit:
      case MipStatus::NodeLimit: {
        if (r.status == MipStatus::TimeLimit)
          ++time_limited;
        else
          ++node_limited;
        // Limit statuses imply an incumbent: a real feasible point whose
        // stored objective matches a replay, bracketed by the bound.
        ASSERT_FALSE(r.x.empty()) << "trial " << trial;
        inst.expect_feasible(r.x);
        EXPECT_NEAR(inst.objective_of(r.x), r.objective, 1e-5);
        EXPECT_GE(r.objective, exact.objective - 1e-5);
        EXPECT_LE(r.best_bound, r.objective + 1e-6);
        EXPECT_LE(r.best_bound, exact.objective + 1e-6);
        break;
      }
      case MipStatus::NoIncumbent:
        // Honest empty-handed return: no point, bound still valid.
        EXPECT_TRUE(r.x.empty());
        EXPECT_LE(r.best_bound, exact.objective + 1e-6);
        break;
      default:
        FAIL() << "feasible model reported " << to_string(r.status)
               << " in trial " << trial;
    }
  }
  // The randomisation must actually exercise the interesting statuses.
  EXPECT_GT(time_limited + node_limited, 5);
  EXPECT_GT(optimal, 5);
}

TEST(AnytimeProperty, SingleNodeBudgetNeverMalformed) {
  rrp::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    LotSizing inst(rng);
    BnbOptions opt;
    opt.max_nodes = 1;
    const MipResult r = solve(inst.model, opt);
    if (r.x.empty()) {
      EXPECT_TRUE(r.status == MipStatus::NoIncumbent ||
                  r.status == MipStatus::Infeasible)
          << to_string(r.status);
    } else {
      inst.expect_feasible(r.x);
      EXPECT_LE(r.best_bound, r.objective + 1e-6);
    }
  }
}

}  // namespace
