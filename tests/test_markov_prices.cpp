#include "core/markov_prices.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/demand.hpp"
#include "core/rolling_horizon.hpp"
#include "core/srrp_dp.hpp"
#include "market/trace_generator.hpp"

namespace {

using namespace rrp::core;

std::vector<double> persistent_series(std::size_t n, std::uint64_t seed) {
  // Strongly autocorrelated positive series.
  rrp::Rng rng(seed);
  std::vector<double> x(n);
  double level = 0.06;
  for (auto& v : x) {
    level = 0.06 + 0.9 * (level - 0.06) + rng.normal(0.0, 0.002);
    v = std::max(level, 0.01);
  }
  return x;
}

TEST(MarkovPrices, FitBasics) {
  const auto x = persistent_series(2000, 301);
  const auto model = MarkovPriceModel::fit(x, 6);
  EXPECT_GE(model.num_states(), 2u);
  EXPECT_LE(model.num_states(), 6u);
  // Representatives ascend.
  for (std::size_t s = 1; s < model.num_states(); ++s)
    EXPECT_GT(model.state_prices()[s], model.state_prices()[s - 1]);
  // Rows are distributions.
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    double total = 0.0;
    for (const auto& p : model.conditional_support(s)) total += p.prob;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(MarkovPrices, PersistenceIsLearned) {
  // On a highly persistent series, staying near the current bucket must
  // be much more likely than jumping across the distribution.
  const auto x = persistent_series(20000, 302);
  const auto model = MarkovPriceModel::fit(x, 5);
  const std::size_t lo = 0, hi = model.num_states() - 1;
  const auto from_lo = model.conditional_support(lo);
  const auto from_hi = model.conditional_support(hi);
  EXPECT_GT(from_lo[lo].prob, from_lo[hi].prob);
  EXPECT_GT(from_hi[hi].prob, from_hi[lo].prob);
}

TEST(MarkovPrices, StateOfClampsAndBuckets) {
  const auto x = persistent_series(2000, 303);
  const auto model = MarkovPriceModel::fit(x, 4);
  EXPECT_EQ(model.state_of(1e-6), 0u);
  EXPECT_EQ(model.state_of(1e6), model.num_states() - 1);
  // Representatives map into their own buckets.
  for (std::size_t s = 0; s < model.num_states(); ++s)
    EXPECT_EQ(model.state_of(model.state_prices()[s]), s);
}

TEST(MarkovPrices, ConditionalTruncationKeepsMassAndOob) {
  const auto x = persistent_series(2000, 304);
  const auto model = MarkovPriceModel::fit(x, 6);
  const double bid = model.state_prices()[1];  // low bid
  const auto pts = model.conditional_truncated(0, bid, 0.2, 4);
  double total = 0.0;
  bool has_oob = false;
  for (const auto& p : pts) {
    total += p.prob;
    has_oob |= p.out_of_bid;
    if (!p.out_of_bid) {
      EXPECT_LE(p.price, bid + 1e-12);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_TRUE(has_oob);
  EXPECT_LE(pts.size(), 4u);
}

TEST(MarkovPrices, BuildTreeConditionsOnParent) {
  const auto x = persistent_series(20000, 305);
  const auto model = MarkovPriceModel::fit(x, 5);
  std::vector<double> bids(3, 10.0);  // bid above everything: no OOB
  std::vector<std::size_t> widths = {5, 5, 5};
  const auto tree = model.build_tree(x.back(), bids, 0.2, widths);
  EXPECT_EQ(tree.num_stages(), 3u);
  EXPECT_NEAR(tree.stage_probability_mass(3), 1.0, 1e-9);
  // Different stage-2 parents must induce different branch
  // distributions (conditionality), unlike the iid tree.
  const auto& s1 = tree.stage_vertices(1);
  ASSERT_GE(s1.size(), 2u);
  const auto c_first = tree.children(s1.front());
  const auto c_last = tree.children(s1.back());
  bool differs = false;
  for (std::size_t k = 0; k < std::min(c_first.size(), c_last.size()); ++k) {
    if (std::fabs(tree.vertex(c_first[k]).branch_prob -
                  tree.vertex(c_last[k]).branch_prob) > 1e-6)
      differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(MarkovPrices, TreeFeedsTheDpSolver) {
  const auto x = persistent_series(5000, 306);
  const auto model = MarkovPriceModel::fit(x, 5);
  std::vector<double> bids(4, 0.061);
  std::vector<std::size_t> widths = {3, 2, 2, 1};
  SrrpInstance inst;
  rrp::Rng rng(307);
  inst.demand = generate_demand(4, DemandConfig{}, rng);
  inst.tree = model.build_tree(0.06, bids, 0.2, widths);
  const auto dp = solve_srrp_tree_dp(inst);
  EXPECT_GT(dp.expected_cost, 0.0);
  const auto agg = solve_srrp(inst, {}, SrrpFormulation::Aggregated);
  ASSERT_TRUE(agg.feasible());
  EXPECT_NEAR(dp.expected_cost, agg.expected_cost, 1e-6);
}

TEST(MarkovPrices, PolicyRunsEndToEnd) {
  const auto trace =
      rrp::market::generate_trace(rrp::market::VmClass::C1Medium, 310);
  const auto hourly = trace.hourly();
  SimulationInputs in;
  in.vm = rrp::market::VmClass::C1Medium;
  in.history.assign(hourly.begin(), hourly.begin() + 24 * 60);
  in.actual_spot.assign(hourly.begin() + 24 * 60,
                        hourly.begin() + 24 * 60 + 24);
  rrp::Rng rng(311);
  in.demand = generate_demand(24, DemandConfig{}, rng);
  const auto result = simulate_policy(in, sto_markov_policy());
  EXPECT_GT(result.total_cost(), 0.0);
  EXPECT_GE(result.total_cost(), ideal_case_cost(in) - 1e-6);
  double store = in.initial_storage;
  for (std::size_t t = 0; t < in.horizon(); ++t) {
    store += result.slots[t].alpha - in.demand[t];
    EXPECT_GT(store, -1e-6);
    store = std::max(store, 0.0);
  }
}

TEST(MarkovPrices, FitValidation) {
  std::vector<double> tiny(4, 0.05);
  EXPECT_THROW(MarkovPriceModel::fit(tiny, 4), rrp::ContractViolation);
  const auto x = persistent_series(100, 308);
  EXPECT_THROW(MarkovPriceModel::fit(x, 1), rrp::ContractViolation);
}

}  // namespace
