#include "timeseries/ets.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace {

using namespace rrp::ts;

TEST(Ets, ConstantSeriesForecastsConstant) {
  std::vector<double> x(50, 3.0);
  const auto model = fit_ets(x);
  const auto f = forecast(model, 5);
  for (double v : f) EXPECT_NEAR(v, 3.0, 1e-9);
}

TEST(Ets, LevelTracksRecentDataWithHighAlpha) {
  // A step change: the fitted smoother must end near the new level.
  std::vector<double> x(60, 1.0);
  for (std::size_t t = 30; t < 60; ++t) x[t] = 5.0;
  const auto model = fit_ets(x);
  EXPECT_NEAR(model.level, 5.0, 0.5);
  EXPECT_NEAR(forecast(model, 1)[0], 5.0, 0.5);
}

TEST(Ets, TrendComponentExtrapolatesLine) {
  std::vector<double> x(40);
  for (std::size_t t = 0; t < x.size(); ++t)
    x[t] = 2.0 + 0.5 * static_cast<double>(t);
  EtsOptions opt;
  opt.trend = true;
  const auto model = fit_ets(x, opt);
  const auto f = forecast(model, 4);
  for (std::size_t h = 0; h < 4; ++h) {
    const double expected = 2.0 + 0.5 * static_cast<double>(40 + h);
    EXPECT_NEAR(f[h], expected, 0.2) << "h=" << h;
  }
}

TEST(Ets, SeasonalPatternRepeats) {
  rrp::Rng rng(401);
  const std::size_t s = 12;
  std::vector<double> x(20 * s);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = 10.0 +
           3.0 * std::sin(2.0 * M_PI * static_cast<double>(t % s) /
                          static_cast<double>(s)) +
           rng.normal(0.0, 0.1);
  }
  EtsOptions opt;
  opt.season = s;
  const auto model = fit_ets(x, opt);
  const auto f = forecast(model, s);
  std::vector<double> truth(s);
  for (std::size_t h = 0; h < s; ++h) {
    truth[h] = 10.0 + 3.0 * std::sin(2.0 * M_PI *
                                     static_cast<double>((x.size() + h) % s) /
                                     static_cast<double>(s));
  }
  EXPECT_GT(rrp::stats::pearson_correlation(f, truth), 0.95);
}

TEST(Ets, FixedWeightsAreRespected) {
  std::vector<double> x(30);
  rrp::Rng rng(402);
  for (auto& v : x) v = rng.normal(5.0, 1.0);
  EtsOptions opt;
  opt.alpha = 0.42;
  const auto model = fit_ets(x, opt);
  EXPECT_DOUBLE_EQ(model.alpha, 0.42);
}

TEST(Ets, OptimisedWeightsBeatArbitraryOnes) {
  rrp::Rng rng(403);
  std::vector<double> x(200, 0.0);
  for (std::size_t t = 1; t < x.size(); ++t)
    x[t] = 0.8 * x[t - 1] + rng.normal();
  EtsOptions fixed;
  fixed.alpha = 0.05;  // deliberately poor
  EtsOptions optimised;
  const auto bad = fit_ets(x, fixed);
  const auto good = fit_ets(x, optimised);
  EXPECT_LE(good.sse, bad.sse + 1e-9);
}

TEST(Ets, ForecastOnAr1ComparableToNaive) {
  // The smoother's one-step forecasts must beat the long-run mean
  // predictor on a persistent series.
  rrp::Rng rng(404);
  std::vector<double> x(1100, 0.0);
  for (std::size_t t = 1; t < x.size(); ++t)
    x[t] = 0.9 * x[t - 1] + rng.normal();
  std::vector<double> train(x.begin(), x.end() - 100);
  double model_se = 0.0, mean_se = 0.0;
  std::vector<double> hist = train;
  for (std::size_t i = 0; i < 100; ++i) {
    const auto m = fit_ets(hist);
    const double pred = forecast(m, 1)[0];
    const double mean_pred = rrp::stats::mean(hist);
    const double actual = x[train.size() + i];
    model_se += (pred - actual) * (pred - actual);
    mean_se += (mean_pred - actual) * (mean_pred - actual);
    hist.push_back(actual);
  }
  EXPECT_LT(model_se, mean_se);
}

TEST(Ets, InputValidation) {
  std::vector<double> tiny = {1.0, 2.0};
  EXPECT_THROW(fit_ets(tiny), rrp::ContractViolation);
  std::vector<double> x(10, 1.0);
  EtsOptions opt;
  opt.season = 12;  // not enough data for two periods
  EXPECT_THROW(fit_ets(x, opt), rrp::ContractViolation);
  EXPECT_THROW(forecast(fit_ets(std::vector<double>(10, 1.0)), 0),
               rrp::ContractViolation);
}

}  // namespace
