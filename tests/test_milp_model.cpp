#include "milp/model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using namespace rrp::milp;

TEST(MilpModel, VariableKindsTracked) {
  Model m;
  const Var x = m.add_continuous(0.0, 5.0, "x");
  const Var y = m.add_integer(0.0, 10.0, "y");
  const Var z = m.add_binary("z");
  EXPECT_FALSE(m.is_integral(x.id));
  EXPECT_TRUE(m.is_integral(y.id));
  EXPECT_TRUE(m.is_integral(z.id));
  EXPECT_EQ(m.num_integer_variables(), 2u);
  EXPECT_DOUBLE_EQ(m.variable(z.id).lo, 0.0);
  EXPECT_DOUBLE_EQ(m.variable(z.id).hi, 1.0);
}

TEST(MilpModel, ConstraintConstantFoldedIntoBounds) {
  Model m;
  const Var x = m.add_continuous(0.0, 10.0);
  // x + 2 <= 7  ->  x <= 5.
  m.add_constraint(LinExpr(x) + 2.0 <= 7.0);
  const auto lp = m.to_lp();
  EXPECT_DOUBLE_EQ(lp.row(0).hi, 5.0);
}

TEST(MilpModel, RejectsForeignVariables) {
  Model m;
  m.add_continuous(0.0, 1.0);
  Var foreign{42};
  EXPECT_THROW(m.add_constraint(LinExpr(foreign) <= 1.0),
               rrp::ContractViolation);
}

TEST(MilpModel, ToLpPreservesIndexingAndObjective) {
  Model m;
  const Var x = m.add_continuous(0.0, 4.0, "x");
  const Var b = m.add_binary("b");
  m.set_objective(3.0 * LinExpr(x) - 2.0 * LinExpr(b) + 10.0,
                  Objective::Minimize);
  m.add_constraint(LinExpr(x) + LinExpr(b) <= 4.0, "cap");
  const auto lp = m.to_lp();
  EXPECT_EQ(lp.num_variables(), 2u);
  EXPECT_DOUBLE_EQ(lp.variable(x.id).objective, 3.0);
  EXPECT_DOUBLE_EQ(lp.variable(b.id).objective, -2.0);
  EXPECT_EQ(lp.variable(0).name, "x");
  // The constant is not representable in the LP; objective_value on the
  // model includes it.
  EXPECT_DOUBLE_EQ(m.objective_value({1.0, 1.0}), 11.0);
  EXPECT_DOUBLE_EQ(lp.objective_value({1.0, 1.0}), 1.0);
}

TEST(MilpModel, MaximizeSensePropagates) {
  Model m;
  const Var x = m.add_continuous(0.0, 1.0);
  m.set_objective(LinExpr(x), Objective::Maximize);
  EXPECT_EQ(m.to_lp().sense(), rrp::lp::Sense::Maximize);
}

TEST(MilpModel, DuplicateTermsMergedInConstraints) {
  Model m;
  const Var x = m.add_continuous(0.0, 10.0);
  m.add_constraint(LinExpr(x) + LinExpr(x) <= 6.0);
  const auto lp = m.to_lp();
  ASSERT_EQ(lp.row(0).entries.size(), 1u);
  EXPECT_DOUBLE_EQ(lp.row(0).entries[0].coeff, 2.0);
}

TEST(MilpModel, InvertedVariableBoundsRejected) {
  Model m;
  EXPECT_THROW(m.add_continuous(3.0, 1.0), rrp::ContractViolation);
  EXPECT_THROW(m.add_integer(5.0, 4.0), rrp::ContractViolation);
}

}  // namespace
