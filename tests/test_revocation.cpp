#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "market/revocation.hpp"
#include "market/spot_trace.hpp"
#include "market/trace_generator.hpp"

namespace {

using namespace rrp::market;

void expect_invalid(const std::function<void()>& fn,
                    const std::string& needle) {
  try {
    fn();
    FAIL() << "expected InvalidArgument mentioning \"" << needle << "\"";
  } catch (const rrp::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(RevocationConfig, ValidatesFieldsByName) {
  RevocationConfig cfg;
  cfg.hazard_per_slot = 1.5;
  expect_invalid([&] { cfg.validate(); }, "hazard_per_slot");
  cfg = RevocationConfig{};
  cfg.storm_rate = -0.1;
  expect_invalid([&] { cfg.validate(); }, "storm_rate");
  cfg = RevocationConfig{};
  cfg.storm_severity = std::nan("");
  expect_invalid([&] { cfg.validate(); }, "storm_severity");
  cfg = RevocationConfig{};
  cfg.checkpoint_interval = 0.0;
  expect_invalid([&] { cfg.validate(); }, "checkpoint_interval");
  cfg = RevocationConfig{};
  cfg.checkpoint_interval = 1.5;
  expect_invalid([&] { cfg.validate(); }, "checkpoint_interval");
  cfg = RevocationConfig{};
  cfg.checkpoint_overhead = 2.0;
  expect_invalid([&] { cfg.validate(); }, "checkpoint_overhead");
  cfg = RevocationConfig{};
  cfg.restart_cost = -1.0;
  expect_invalid([&] { cfg.validate(); }, "restart_cost");
  cfg = RevocationConfig{};
  cfg.migration_cost = std::numeric_limits<double>::infinity();
  expect_invalid([&] { cfg.validate(); }, "migration_cost");
  RevocationConfig{}.validate();  // defaults are valid
}

TEST(RevocationConfig, NamedRegimes) {
  const RevocationConfig calm = RevocationConfig::regime("calm");
  EXPECT_TRUE(calm.enabled);
  EXPECT_EQ(calm.hazard_per_slot, 0.0);
  EXPECT_EQ(calm.storm_rate, 0.0);

  const RevocationConfig cross = RevocationConfig::regime("bid-cross");
  EXPECT_GT(cross.hazard_per_slot, 0.0);
  EXPECT_EQ(cross.storm_rate, 0.0);

  const RevocationConfig storm = RevocationConfig::regime("storm");
  EXPECT_GT(storm.storm_rate, 0.0);
  EXPECT_GT(storm.hazard_per_slot, 0.0);

  expect_invalid([] { (void)RevocationConfig::regime("hurricane"); },
                 "hurricane");
}

TEST(RevocationModel, DeterministicAcrossConstructions) {
  RevocationConfig cfg = RevocationConfig::storm();
  cfg.seed = 99;
  const RevocationModel a(cfg, 200);
  const RevocationModel b(cfg, 200);
  for (std::size_t t = 0; t < 200; ++t) {
    EXPECT_EQ(a.storm_at(t), b.storm_at(t));
    EXPECT_EQ(a.revocation(t, 0.1, 0.05), b.revocation(t, 0.1, 0.05));
    EXPECT_DOUBLE_EQ(a.interruption_fraction(t),
                     b.interruption_fraction(t));
  }
}

TEST(RevocationModel, DisabledNeverRevokes) {
  RevocationConfig cfg;  // enabled = false
  cfg.hazard_per_slot = 1.0;
  cfg.storm_rate = 1.0;
  const RevocationModel model(cfg, 50);
  for (std::size_t t = 0; t < 50; ++t) {
    EXPECT_FALSE(model.storm_at(t));
    // Even a crossed bid does not revoke while the layer is off.
    EXPECT_FALSE(model.revocation(t, 0.1, 99.0).has_value());
  }
}

TEST(RevocationModel, BidCrossFiresExactlyWhenMaxExceedsBid) {
  RevocationConfig cfg = RevocationConfig::calm();  // no hazard, no storms
  cfg.seed = 3;
  const RevocationModel model(cfg, 10);
  for (std::size_t t = 0; t < 10; ++t) {
    EXPECT_EQ(model.revocation(t, 0.10, 0.12),
              std::optional<RevocationKind>(RevocationKind::BidCross));
    EXPECT_FALSE(model.revocation(t, 0.10, 0.10).has_value());
    EXPECT_FALSE(model.revocation(t, 0.10, 0.08).has_value());
  }
}

TEST(RevocationModel, StormDominatesBidCrossDominatesHazard) {
  RevocationConfig cfg;
  cfg.enabled = true;
  cfg.hazard_per_slot = 1.0;  // every slot hazards...
  cfg.storm_rate = 1.0;       // ...and storms, severity 1
  cfg.storm_severity = 1.0;
  const RevocationModel model(cfg, 5);
  // Storm wins over a crossed bid and the certain hazard.
  EXPECT_EQ(model.revocation(0, 0.1, 0.5), RevocationKind::Storm);

  cfg.storm_rate = 0.0;
  const RevocationModel no_storm(cfg, 5);
  EXPECT_EQ(no_storm.revocation(0, 0.1, 0.5), RevocationKind::BidCross);
  EXPECT_EQ(no_storm.revocation(0, 0.1, 0.05), RevocationKind::Hazard);
}

TEST(RevocationModel, InterruptionFractionsStayOffSlotEdges) {
  RevocationConfig cfg = RevocationConfig::storm();
  const RevocationModel model(cfg, 500);
  for (std::size_t t = 0; t < 500; ++t) {
    EXPECT_GE(model.interruption_fraction(t), 0.05);
    EXPECT_LT(model.interruption_fraction(t), 0.95);
  }
}

TEST(RevocationModel, PreservedWorkFollowsCheckpointArithmetic) {
  RevocationConfig cfg;
  cfg.checkpoint_interval = 0.25;
  const RevocationModel model(cfg, 1);
  EXPECT_DOUBLE_EQ(model.preserved_work(0.10), 0.0);
  EXPECT_DOUBLE_EQ(model.preserved_work(0.25), 0.25);
  EXPECT_DOUBLE_EQ(model.preserved_work(0.60), 0.5);
  EXPECT_DOUBLE_EQ(model.preserved_work(0.99), 0.75);

  cfg.checkpoint_interval = 1.0;  // no intra-slot checkpoints
  const RevocationModel none(cfg, 1);
  EXPECT_DOUBLE_EQ(none.preserved_work(0.9), 0.0);  // whole partial lost
}

TEST(RevocationModel, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(RevocationKind::BidCross), "bid-cross");
  EXPECT_STREQ(to_string(RevocationKind::Hazard), "hazard");
  EXPECT_STREQ(to_string(RevocationKind::Storm), "storm");
}

// --- trace-carried revocation events ---------------------------------

TEST(SpotTraceRevocations, MarkersSurviveCsvRoundTrip) {
  std::vector<rrp::ts::Tick> ticks = {
      {0.0, 0.05}, {1.5, 0.06}, {3.25, 0.07}, {5.0, 0.04}};
  std::vector<RevocationMarker> markers = {{1, false}, {3, true}};
  const SpotTrace trace(VmClass::C1Medium, ticks, markers);
  const std::string path =
      ::testing::TempDir() + "rrp_revocation_roundtrip.csv";
  trace.save_csv(path);
  const SpotTrace loaded = SpotTrace::load_csv(path, VmClass::C1Medium);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.revocations().size(), 2u);
  EXPECT_EQ(loaded.revocations()[0].tick_index, 1u);
  EXPECT_FALSE(loaded.revocations()[0].storm);
  EXPECT_EQ(loaded.revocations()[1].tick_index, 3u);
  EXPECT_TRUE(loaded.revocations()[1].storm);
}

TEST(SpotTraceRevocations, HourlyViewMapsMarkersAndStormDominates) {
  std::vector<rrp::ts::Tick> ticks = {
      {0.0, 0.05}, {1.2, 0.06}, {1.8, 0.07}, {4.5, 0.04}};
  // Hour 1 carries both a single reclaim and a storm: Storm must win.
  std::vector<RevocationMarker> markers = {{1, false}, {2, true}, {3, false}};
  const SpotTrace trace(VmClass::C1Medium, ticks, markers);
  const auto hourly = trace.hourly_revocations(0, 6);
  ASSERT_EQ(hourly.size(), 6u);
  EXPECT_EQ(hourly[0], HourlyRevocation::None);
  EXPECT_EQ(hourly[1], HourlyRevocation::Storm);
  EXPECT_EQ(hourly[4], HourlyRevocation::Single);
  EXPECT_EQ(hourly[5], HourlyRevocation::None);
}

TEST(SpotTraceRevocations, HourlyMaxSeesIntraSlotSpikes) {
  // LOCF hourly sees 0.05 for hour 0; the intra-hour spike to 0.30 must
  // surface in hourly_max (this is what bid-cross checks against).
  std::vector<rrp::ts::Tick> ticks = {{0.0, 0.05}, {0.4, 0.30}, {0.9, 0.05}};
  const SpotTrace trace(VmClass::C1Medium, ticks);
  const auto mx = trace.hourly_max(0, 2);
  ASSERT_EQ(mx.size(), 2u);
  EXPECT_DOUBLE_EQ(mx[0], 0.30);
  EXPECT_DOUBLE_EQ(mx[1], 0.05);  // LOCF floor, no updates in hour 1
}

TEST(SpotTraceRevocations, ConstructorRejectsBadMarkers) {
  std::vector<rrp::ts::Tick> ticks = {{0.0, 0.05}, {1.0, 0.06}};
  std::vector<RevocationMarker> out_of_range = {{5, false}};
  EXPECT_THROW(SpotTrace(VmClass::C1Medium, ticks, out_of_range),
               rrp::ContractViolation);
  std::vector<RevocationMarker> unsorted = {{1, false}, {0, true}};
  EXPECT_THROW(SpotTrace(VmClass::C1Medium, ticks, unsorted),
               rrp::ContractViolation);
}

TEST(SpotTraceRevocations, GeneratorEmitsMarkersWhenConfigured) {
  TraceGeneratorConfig cfg = default_config(VmClass::C1Medium);
  cfg.days = 60.0;
  cfg.revocations_per_day = 0.5;
  cfg.storms_per_day = 0.2;
  rrp::Rng rng(17);
  const SpotTrace trace = generate_trace(VmClass::C1Medium, cfg, rng);
  EXPECT_FALSE(trace.revocations().empty());
  bool any_storm = false, any_single = false;
  for (const RevocationMarker& m : trace.revocations()) {
    ASSERT_LT(m.tick_index, trace.ticks().size());
    (m.storm ? any_storm : any_single) = true;
  }
  EXPECT_TRUE(any_storm);
  EXPECT_TRUE(any_single);
}

TEST(SpotTraceRevocations, GeneratorDefaultsEmitNone) {
  const SpotTrace trace = generate_trace(VmClass::C1Medium, 2012);
  EXPECT_TRUE(trace.revocations().empty());
}

}  // namespace
