// Observability layer: registry correctness (counters, gauges,
// histograms, scrape), trace spans (FakeClock durations, nesting,
// thread attribution, Chrome JSON), structured events, and the
// off-build no-op probe.  The concurrent tests double as the TSan
// targets (the CI tsan job runs -R "...|Obs").
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.hpp"
#include "obs/obs.hpp"

namespace rrp_test {
bool obs_off_probe_evaluated();
}

namespace {

using namespace rrp;

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(ObsCounter, AddAndValue) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsCounter, RegistryReturnsStableReference) {
  obs::Counter& a = obs::global_registry().counter("test.obs.stable");
  obs::Counter& b = obs::global_registry().counter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(ObsGauge, SetAddValue) {
  obs::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 3.25);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(ObsHistogram, BucketPlacementAndOverflow) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0 (inclusive upper bound)
  h.observe(3.0);   // bucket 2
  h.observe(100.0); // overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
}

TEST(ObsHistogram, FirstRegistrationFixesBounds) {
  obs::Histogram& a =
      obs::global_registry().histogram("test.obs.hist.bounds", {1.0, 2.0});
  obs::Histogram& b =
      obs::global_registry().histogram("test.obs.hist.bounds", {9.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.upper_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(ObsSnapshot, LookupsAndMissingMetrics) {
  obs::global_registry().counter("test.obs.snap.counter").add(7);
  obs::global_registry().gauge("test.obs.snap.gauge").set(1.5);
  const obs::MetricsSnapshot snap = obs::global_registry().scrape();
  EXPECT_EQ(snap.counter("test.obs.snap.counter"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauge("test.obs.snap.gauge"), 1.5);
  EXPECT_EQ(snap.counter("test.obs.snap.never_registered"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("test.obs.snap.never_registered"), 0.0);
}

TEST(ObsSnapshot, TextAndJsonFormats) {
  obs::global_registry().counter("test.obs.fmt.counter").add(3);
  obs::global_registry()
      .histogram("test.obs.fmt.hist", {1.0})
      .observe(0.5);
  const obs::MetricsSnapshot snap = obs::global_registry().scrape();
  const std::string text = snap.to_text();
  EXPECT_NE(text.find("test.obs.fmt.counter 3"), std::string::npos);
  EXPECT_NE(text.find("test.obs.fmt.hist_count"), std::string::npos);
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.fmt.counter\":3"), std::string::npos);
  // Balanced braces — cheap structural sanity without a JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// TSan target: concurrent sharded increments with scrapes in flight
// must be race-free, and the final sum exact.
TEST(ObsRegistry, ConcurrentIncrementsAndScrapes) {
  obs::Counter& c =
      obs::global_registry().counter("test.obs.concurrent.counter");
  obs::Gauge& g = obs::global_registry().gauge("test.obs.concurrent.gauge");
  const std::uint64_t before = c.value();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = obs::global_registry().scrape();
      (void)snap.counter("test.obs.concurrent.counter");
    }
  });
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        c.add(1);
        g.add(0.5);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_EQ(c.value() - before,
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

// ---------------------------------------------------------------------------
// Trace spans.
// ---------------------------------------------------------------------------

/// Enables tracing with a FakeClock for one test, restoring the
/// recorder's defaults on exit so tests stay independent.
class TracingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& rec = obs::TraceRecorder::instance();
    rec.clear();
    rec.set_clock(&clock_);
    rec.enable();
  }
  void TearDown() override {
    auto& rec = obs::TraceRecorder::instance();
    rec.disable();
    rec.set_clock(nullptr);
    rec.clear();
  }

  common::FakeClock clock_;
};

using ObsTraceSpan = TracingFixture;

TEST_F(ObsTraceSpan, FakeClockDrivesDurations) {
  clock_.set(10.0);
  {
    obs::TraceSpan span("test.span");
    clock_.set(12.5);
  }
  const auto spans = obs::TraceRecorder::instance().collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test.span");
  EXPECT_DOUBLE_EQ(spans[0].start_seconds, 10.0);
  EXPECT_DOUBLE_EQ(spans[0].dur_seconds, 2.5);
  EXPECT_EQ(spans[0].depth, 0u);
}

TEST_F(ObsTraceSpan, NestingDepthAndCloseOrder) {
  {
    obs::TraceSpan outer("outer");
    {
      obs::TraceSpan inner("inner");
      clock_.advance(1.0);
    }
    clock_.advance(1.0);
  }
  const auto spans = obs::TraceRecorder::instance().collect();
  ASSERT_EQ(spans.size(), 2u);
  // Records are written at close: inner first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_GE(spans[1].dur_seconds, spans[0].dur_seconds);
}

TEST_F(ObsTraceSpan, ArgsAttachToInnermostSpan) {
  {
    obs::TraceSpan outer("outer");
    outer.arg("direct", 1.0);
    {
      obs::TraceSpan inner("inner");
      obs::TraceSpan::current_arg("node", 17.0);
    }
  }
  const auto spans = obs::TraceRecorder::instance().collect();
  ASSERT_EQ(spans.size(), 2u);
  ASSERT_EQ(spans[0].num_args, 1u);  // inner
  EXPECT_STREQ(spans[0].args[0].key, "node");
  EXPECT_DOUBLE_EQ(spans[0].args[0].value, 17.0);
  ASSERT_EQ(spans[1].num_args, 1u);  // outer
  EXPECT_STREQ(spans[1].args[0].key, "direct");
}

TEST_F(ObsTraceSpan, ThreadsGetDistinctTids) {
  {
    obs::TraceSpan span("main.thread");
  }
  std::thread worker([] {
    obs::TraceSpan span("other.thread");
  });
  worker.join();
  auto spans = obs::TraceRecorder::instance().collect();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST_F(ObsTraceSpan, DisabledRecorderRecordsNothing) {
  obs::TraceRecorder::instance().disable();
  {
    obs::TraceSpan span("ignored");
  }
  EXPECT_TRUE(obs::TraceRecorder::instance().collect().empty());
}

TEST_F(ObsTraceSpan, ChromeTraceJsonShape) {
  clock_.set(1.0);
  {
    obs::TraceSpan span("bnb.node");
    span.arg("node", 3.0);
    clock_.set(1.5);
  }
  std::ostringstream out;
  obs::TraceRecorder::instance().write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_NE(json.find("\"name\":\"bnb.node\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":500000"), std::string::npos);  // 0.5 s in us
  EXPECT_NE(json.find("\"args\":{\"node\":3"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
}

// TSan target: spans opened/closed on many threads while a collector
// snapshots the rings.
TEST_F(ObsTraceSpan, ConcurrentSpansAndCollect) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::atomic<bool> stop{false};
  std::thread collector([&] {
    while (!stop.load(std::memory_order_relaxed))
      (void)obs::TraceRecorder::instance().collect();
  });
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::TraceSpan span("stress");
        obs::TraceSpan::current_arg("i", static_cast<double>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  collector.join();
  EXPECT_EQ(obs::TraceRecorder::instance().collect().size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
}

// ---------------------------------------------------------------------------
// Structured events.
// ---------------------------------------------------------------------------

/// Installs a VectorSink (and FakeClock) for one test; removes both on
/// exit.
class EventFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    sink_ = std::make_shared<obs::VectorSink>();
    obs::EventLog::instance().set_clock(&clock_);
    obs::EventLog::instance().set_sink(sink_);
  }
  void TearDown() override {
    obs::EventLog::instance().set_sink(nullptr);
    obs::EventLog::instance().set_clock(nullptr);
  }

  common::FakeClock clock_;
  std::shared_ptr<obs::VectorSink> sink_;
};

using ObsEvents = EventFixture;

TEST_F(ObsEvents, EmitCapturesFieldsAndTimestamp) {
  clock_.set(42.0);
  obs::EventLog::instance().emit(
      "rh", "fallback",
      {{"slot", std::uint64_t{7}}, {"reason", "timeout"}, {"used", 1.5}});
  const auto events = sink_->events();
  ASSERT_EQ(events.size(), 1u);
  const obs::Event& e = events[0];
  EXPECT_DOUBLE_EQ(e.ts_seconds, 42.0);
  EXPECT_STREQ(e.category, "rh");
  EXPECT_STREQ(e.name, "fallback");
  ASSERT_EQ(e.fields.size(), 3u);
  EXPECT_STREQ(e.fields[0].key, "slot");
  EXPECT_DOUBLE_EQ(e.fields[0].num, 7.0);
  EXPECT_TRUE(e.fields[1].is_string);
  EXPECT_EQ(e.fields[1].str, "timeout");
  EXPECT_DOUBLE_EQ(e.fields[2].num, 1.5);
}

TEST_F(ObsEvents, NoSinkMeansDisabledAndDropped) {
  obs::EventLog::instance().set_sink(nullptr);
  EXPECT_FALSE(obs::EventLog::instance().enabled());
  obs::EventLog::instance().emit("x", "dropped", {});
  EXPECT_TRUE(sink_->events().empty());
}

TEST_F(ObsEvents, JsonlLineFormatAndEscaping) {
  obs::Event e;
  e.ts_seconds = 1.25;
  e.category = "lp";
  e.name = "recovery";
  e.fields.push_back({"rung", 2});
  e.fields.push_back({"ladder", std::string("say \"hi\"\n")});
  EXPECT_EQ(obs::event_to_jsonl(e),
            "{\"ts\":1.25,\"cat\":\"lp\",\"event\":\"recovery\","
            "\"rung\":2,\"ladder\":\"say \\\"hi\\\"\\n\"}");
}

// TSan target: concurrent emitters against one sink.
TEST_F(ObsEvents, ConcurrentEmitters) {
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kEventsPerThread; ++i)
        obs::EventLog::instance().emit("stress", "tick", {{"i", i}});
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(sink_->events().size(),
            static_cast<std::size_t>(kThreads) * kEventsPerThread);
}

// ---------------------------------------------------------------------------
// Macros (this TU builds with observability ON) and the off-build probe.
// ---------------------------------------------------------------------------

#if RRP_OBSERVABILITY_ENABLED
TEST(ObsMacros, FeedTheGlobalRegistry) {
  RRP_COUNTER_ADD("test.obs.macro.counter", 2);
  RRP_COUNTER_ADD("test.obs.macro.counter", 3);
  RRP_GAUGE_SET("test.obs.macro.gauge", 9.5);
  RRP_HISTOGRAM_OBSERVE("test.obs.macro.hist", 1.5, {1.0, 2.0});
  const auto snap = obs::global_registry().scrape();
  EXPECT_EQ(snap.counter("test.obs.macro.counter"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauge("test.obs.macro.gauge"), 9.5);
}
#endif  // RRP_OBSERVABILITY_ENABLED

TEST(ObsOffProbe, DisabledMacrosNeverEvaluateArguments) {
  EXPECT_FALSE(rrp_test::obs_off_probe_evaluated());
}

}  // namespace
