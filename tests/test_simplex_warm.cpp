// Warm-start unit tests for lp::SimplexSolver (ISSUE 5): basis
// export/reinstall, dual-simplex re-optimisation after bound and
// objective edits, and the cold-solve fallback on unusable bases.  The
// invariant throughout: solve_from() must return exactly the same
// answer a cold solve would, whichever path produced it.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "lp/simplex.hpp"

namespace {

using namespace rrp::lp;

// Multi-pivot LP so warm starts have real work to skip.
LinearProgram dense_lp() {
  LinearProgram lp;
  std::vector<std::size_t> vars;
  for (int i = 0; i < 12; ++i)
    vars.push_back(lp.add_variable(0.0, 10.0, 1.0 + 0.1 * i));
  lp.set_sense(Sense::Maximize);
  for (int r = 0; r < 8; ++r) {
    std::vector<Entry> row;
    for (int i = 0; i < 12; ++i)
      row.push_back({vars[i], 1.0 + ((r + i) % 3)});
    lp.add_row(std::move(row), -kInfinity, 30.0 + 2.0 * r);
  }
  return lp;
}

TEST(SimplexWarm, BasisRoundtripReproducesOptimum) {
  const LinearProgram lp = dense_lp();
  SimplexSolver solver(lp);
  const Solution cold = solver.solve();
  ASSERT_EQ(cold.status, SolveStatus::Optimal);
  EXPECT_FALSE(solver.last_solve_was_warm());

  const Basis basis = solver.basis();
  ASSERT_FALSE(basis.empty());
  EXPECT_EQ(basis.basic.size(), lp.num_rows());
  EXPECT_EQ(basis.status.size(), lp.num_variables() + lp.num_rows());

  // Re-optimising from the optimal basis with nothing changed must be
  // a no-op warm solve with the identical answer.
  const Solution warm = solver.solve_from(basis);
  ASSERT_EQ(warm.status, SolveStatus::Optimal);
  EXPECT_TRUE(solver.last_solve_was_warm());
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  for (std::size_t j = 0; j < lp.num_variables(); ++j)
    EXPECT_NEAR(warm.x[j], cold.x[j], 1e-9) << "x[" << j << "]";
}

TEST(SimplexWarm, WarmEqualsColdAfterBoundTightening) {
  // The branch & bound access pattern: solve, export the basis, tighten
  // one variable's bounds, re-optimise from the parent basis.  The
  // warm answer must match a from-scratch solve of the edited program.
  LinearProgram lp = dense_lp();
  SimplexSolver solver(lp);
  ASSERT_EQ(solver.solve().status, SolveStatus::Optimal);
  const Basis parent = solver.basis();
  ASSERT_FALSE(parent.empty());

  for (const auto& [lo, hi] :
       std::vector<std::pair<double, double>>{{0.0, 3.0}, {2.0, 10.0},
                                              {5.0, 5.0}}) {
    solver.set_variable_bounds(0, lo, hi);
    const Solution warm = solver.solve_from(parent);

    lp.set_variable_bounds(0, lo, hi);
    const Solution reference = solve(lp);

    ASSERT_EQ(warm.status, reference.status) << "[" << lo << ", " << hi << "]";
    ASSERT_EQ(warm.status, SolveStatus::Optimal);
    EXPECT_NEAR(warm.objective, reference.objective, 1e-7)
        << "[" << lo << ", " << hi << "]";
    EXPECT_TRUE(solver.last_solve_was_warm());
  }
}

TEST(SimplexWarm, WarmStartSkipsPivots) {
  // A small bound change near the optimum should need far fewer pivots
  // than the cold two-phase solve — the whole point of warm starting.
  const LinearProgram lp = dense_lp();
  SimplexSolver solver(lp);
  const Solution cold = solver.solve();
  ASSERT_EQ(cold.status, SolveStatus::Optimal);
  const Basis parent = solver.basis();

  solver.set_variable_bounds(3, 0.0, 1.0);
  const Solution warm = solver.solve_from(parent);
  ASSERT_EQ(warm.status, SolveStatus::Optimal);
  EXPECT_TRUE(solver.last_solve_was_warm());
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(SimplexWarm, WarmDetectsInfeasibility) {
  // min x + y, x + y >= 6, x,y in [0, 10]; fixing both to 1 makes the
  // row unsatisfiable.  The dual simplex must certify infeasibility
  // without falling back to phase 1.
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 10.0, 1.0);
  const auto y = lp.add_variable(0.0, 10.0, 1.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, 6.0, kInfinity);
  SimplexSolver solver(lp);
  ASSERT_EQ(solver.solve().status, SolveStatus::Optimal);
  const Basis parent = solver.basis();
  ASSERT_FALSE(parent.empty());

  solver.set_variable_bounds(x, 1.0, 1.0);
  solver.set_variable_bounds(y, 1.0, 1.0);
  const Solution sol = solver.solve_from(parent);
  EXPECT_EQ(sol.status, SolveStatus::Infeasible);

  // Relaxing the bounds again recovers the optimum.
  solver.set_variable_bounds(x, 0.0, 10.0);
  solver.set_variable_bounds(y, 0.0, 10.0);
  const Solution back = solver.solve_from(parent);
  ASSERT_EQ(back.status, SolveStatus::Optimal);
  EXPECT_NEAR(back.objective, 6.0, 1e-8);
}

TEST(SimplexWarm, ObjectiveEditsApplyToWarmSolves) {
  LinearProgram lp = dense_lp();
  SimplexSolver solver(lp);
  ASSERT_EQ(solver.solve().status, SolveStatus::Optimal);
  const Basis parent = solver.basis();

  solver.set_objective(0, 25.0);  // was 1.0; make x0 dominate
  EXPECT_EQ(solver.objective_coefficient(0), 25.0);
  const Solution warm = solver.solve_from(parent);

  lp.set_objective(0, 25.0);
  const Solution reference = solve(lp);
  ASSERT_EQ(warm.status, SolveStatus::Optimal);
  ASSERT_EQ(reference.status, SolveStatus::Optimal);
  EXPECT_NEAR(warm.objective, reference.objective, 1e-7);
}

TEST(SimplexWarm, EmptyBasisFallsBackToColdSolve) {
  SimplexSolver solver(dense_lp());
  const Solution sol = solver.solve_from(Basis{});
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_FALSE(solver.last_solve_was_warm());
}

TEST(SimplexWarm, GarbageBasisFallsBackToColdSolve) {
  const LinearProgram lp = dense_lp();
  SimplexSolver reference(lp);
  const Solution cold = reference.solve();
  ASSERT_EQ(cold.status, SolveStatus::Optimal);

  const std::size_t n = lp.num_variables();
  const std::size_t m = lp.num_rows();

  // Wrong shape: too few rows.
  Basis short_basis;
  short_basis.basic.assign(m - 1, 0);
  short_basis.status.assign(n + m, BasisStatus::AtLower);

  // Duplicate basic variable.
  Basis dup_basis;
  dup_basis.basic.assign(m, 0);
  dup_basis.status.assign(n + m, BasisStatus::AtLower);
  dup_basis.status[0] = BasisStatus::Basic;

  // Out-of-range basic indices.
  Basis oob_basis;
  oob_basis.basic.assign(m, n + 2 * m + 5);
  oob_basis.status.assign(n + m, BasisStatus::AtLower);

  for (const Basis* bad : {&short_basis, &dup_basis, &oob_basis}) {
    SimplexSolver solver(lp);
    const Solution sol = solver.solve_from(*bad);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_FALSE(solver.last_solve_was_warm());
    EXPECT_NEAR(sol.objective, cold.objective, 1e-8);
  }
}

TEST(SimplexWarm, BasisUnavailableAfterNonOptimalSolve) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 1.0, 1.0);
  lp.add_row({{x, 1.0}}, 5.0, kInfinity);  // x >= 5 with x <= 1
  SimplexSolver solver(lp);
  EXPECT_EQ(solver.solve().status, SolveStatus::Infeasible);
  EXPECT_TRUE(solver.basis().empty());
}

TEST(SimplexWarm, FaultInjectorFiresOnWarmPathToo) {
  rrp::testing::FaultInjector inj;
  inj.arm_lp_failures(1);
  SimplexOptions opt;
  opt.fault_injector = &inj;

  SimplexSolver solver(dense_lp());
  ASSERT_EQ(solver.solve().status, SolveStatus::Optimal);
  const Basis parent = solver.basis();

  EXPECT_THROW(solver.solve_from(parent, opt), rrp::NumericalError);
  EXPECT_EQ(inj.armed_lp_failures(), 0u);
  // Consumed: the next warm solve goes through.
  const Solution sol = solver.solve_from(parent, opt);
  EXPECT_EQ(sol.status, SolveStatus::Optimal);
}

TEST(SimplexWarm, RowlessProgramUsesClosedForm) {
  LinearProgram lp;
  const auto x = lp.add_variable(-2.0, 5.0, 3.0);
  const auto y = lp.add_variable(0.0, 4.0, -1.0);
  SimplexSolver solver(lp);

  const Solution cold = solver.solve();
  ASSERT_EQ(cold.status, SolveStatus::Optimal);
  EXPECT_NEAR(cold.x[x], -2.0, 1e-12);
  EXPECT_NEAR(cold.x[y], 4.0, 1e-12);

  const Solution warm = solver.solve_from(solver.basis());
  ASSERT_EQ(warm.status, SolveStatus::Optimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-12);
}

TEST(SimplexWarm, RepeatedWarmSolvesStayConsistent) {
  // Drive the solver through a chain of bound edits, re-optimising from
  // the previous basis each time — the B&B dive pattern.  Every answer
  // is cross-checked against a one-shot solve.
  LinearProgram lp = dense_lp();
  SimplexSolver solver(lp);
  ASSERT_EQ(solver.solve().status, SolveStatus::Optimal);
  Basis basis = solver.basis();

  const std::vector<std::tuple<std::size_t, double, double>> edits = {
      {1, 0.0, 4.0}, {5, 2.0, 10.0}, {1, 0.0, 1.0},
      {9, 0.0, 0.0}, {5, 2.0, 3.0},  {2, 6.0, 10.0},
  };
  for (const auto& [j, lo, hi] : edits) {
    solver.set_variable_bounds(j, lo, hi);
    lp.set_variable_bounds(j, lo, hi);
    const Solution warm = solver.solve_from(basis);
    const Solution reference = solve(lp);
    ASSERT_EQ(warm.status, reference.status);
    ASSERT_EQ(warm.status, SolveStatus::Optimal);
    EXPECT_NEAR(warm.objective, reference.objective, 1e-7);
    basis = solver.basis();
    ASSERT_FALSE(basis.empty());
  }
}

}  // namespace
