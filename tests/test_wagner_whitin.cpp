// Cross-validation of the three exact DRRP solvers: the paper's
// aggregated MILP, the facility-location MILP, and the Wagner-Whitin
// dynamic program must agree on the optimum for uncapacitated
// instances.
#include "core/wagner_whitin.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/demand.hpp"

namespace {

using namespace rrp::core;

DrrpInstance random_instance(std::uint64_t seed, std::size_t slots) {
  rrp::Rng rng(seed);
  DrrpInstance inst;
  inst.demand = generate_demand(slots, DemandConfig{}, rng);
  inst.compute_price.resize(slots);
  for (auto& p : inst.compute_price) p = rng.uniform(0.02, 1.0);
  inst.initial_storage = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.8) : 0.0;
  return inst;
}

class SolverAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreement, AllThreeSolversMatch) {
  const auto inst =
      random_instance(7000 + static_cast<std::uint64_t>(GetParam()),
                      6 + static_cast<std::size_t>(GetParam()) % 7);
  const RentalPlan ww = solve_drrp_wagner_whitin(inst);
  const RentalPlan fl =
      solve_drrp(inst, {}, DrrpFormulation::FacilityLocation);
  const RentalPlan agg =
      solve_drrp(inst, {}, DrrpFormulation::Aggregated);
  ASSERT_EQ(ww.status, rrp::milp::MipStatus::Optimal);
  ASSERT_TRUE(fl.feasible());
  ASSERT_TRUE(agg.feasible());
  EXPECT_NEAR(ww.cost.total(), fl.cost.total(),
              1e-5 * (1.0 + ww.cost.total()));
  EXPECT_NEAR(ww.cost.total(), agg.cost.total(),
              1e-5 * (1.0 + ww.cost.total()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SolverAgreement, ::testing::Range(0, 15));

TEST(WagnerWhitin, MatchesMilpOnLongerHorizon) {
  const auto inst = random_instance(8101, 24);
  const RentalPlan ww = solve_drrp_wagner_whitin(inst);
  const RentalPlan fl =
      solve_drrp(inst, {}, DrrpFormulation::FacilityLocation);
  EXPECT_NEAR(ww.cost.total(), fl.cost.total(), 1e-5);
}

TEST(WagnerWhitin, PlanIsFeasible) {
  const auto inst = random_instance(8202, 24);
  const RentalPlan ww = solve_drrp_wagner_whitin(inst);
  // evaluate_schedule validates balance and the forcing constraint, and
  // must agree with the DP's own accounting.
  const CostBreakdown check = evaluate_schedule(inst, ww.alpha, ww.chi);
  EXPECT_NEAR(check.total(), ww.cost.total(), 1e-9);
}

TEST(WagnerWhitin, ZeroInventoryOrderingProperty) {
  const auto inst = random_instance(8303, 24);
  const RentalPlan ww = solve_drrp_wagner_whitin(inst);
  // Generation happens only when inventory (beyond leftover epsilon
  // serving no future demand) has run out: beta > 0 implies the next
  // rental slot has not yet arrived.  Practically: at any slot with
  // chi=1, the previous slot's inventory must be ~0 once epsilon is
  // exhausted.
  double eps_left = inst.initial_storage;
  for (std::size_t t = 0; t < inst.horizon(); ++t) {
    const double prev_beta = t == 0 ? inst.initial_storage : ww.beta[t - 1];
    if (ww.chi[t] && eps_left <= 1e-9) {
      EXPECT_NEAR(prev_beta, 0.0, 1e-6) << "slot " << t;
    }
    eps_left = std::max(eps_left - inst.demand[t], 0.0);
  }
}

TEST(WagnerWhitin, CheapSlotAttractsGeneration) {
  DrrpInstance inst;
  inst.demand = constant_demand(6, 0.4);
  inst.compute_price = {0.8, 0.8, 0.01, 0.8, 0.8, 0.8};
  const RentalPlan ww = solve_drrp_wagner_whitin(inst);
  EXPECT_EQ(ww.chi[2], 1);  // the bargain slot must be used
  // All demand from slot 2 onward is generated there (holding is far
  // cheaper than 0.8 rentals).
  EXPECT_NEAR(ww.alpha[2], 0.4 * 4, 1e-9);
}

TEST(WagnerWhitin, RejectsCapacitatedInstances) {
  DrrpInstance inst;
  inst.demand = constant_demand(3, 0.4);
  inst.compute_price.assign(3, 0.2);
  inst.bottleneck_rate = 1.0;
  inst.bottleneck_capacity.assign(3, 1.0);
  EXPECT_THROW(solve_drrp_wagner_whitin(inst), rrp::InvalidArgument);
}

TEST(WagnerWhitin, HandlesZeroDemandSlots) {
  DrrpInstance inst;
  inst.demand = {0.0, 0.5, 0.0, 0.0, 0.7, 0.0};
  inst.compute_price.assign(6, 0.4);
  const RentalPlan ww = solve_drrp_wagner_whitin(inst);
  const RentalPlan fl =
      solve_drrp(inst, {}, DrrpFormulation::FacilityLocation);
  EXPECT_NEAR(ww.cost.total(), fl.cost.total(), 1e-6);
  EXPECT_EQ(ww.chi[0], 0);
}

TEST(WagnerWhitin, LargeEpsilonCoversEverything) {
  DrrpInstance inst;
  inst.demand = constant_demand(5, 0.3);
  inst.compute_price.assign(5, 0.4);
  inst.initial_storage = 2.0;  // more than total demand of 1.5
  const RentalPlan ww = solve_drrp_wagner_whitin(inst);
  for (char c : ww.chi) EXPECT_EQ(c, 0);
  EXPECT_NEAR(ww.cost.compute, 0.0, 1e-12);
  // The leftover 0.5 GB is held to the end of the horizon.
  EXPECT_NEAR(ww.beta.back(), 0.5, 1e-9);
  const RentalPlan fl =
      solve_drrp(inst, {}, DrrpFormulation::FacilityLocation);
  EXPECT_NEAR(ww.cost.total(), fl.cost.total(), 1e-6);
}

TEST(WagnerWhitinDeadline, ExpiredDeadlineThrows) {
  const auto inst = random_instance(901, 24);
  rrp::common::FakeClock clock(100.0);
  const auto d = rrp::common::Deadline::after(0.0, clock);
  EXPECT_THROW(solve_drrp_wagner_whitin(inst, d), rrp::TimeLimitExceeded);
}

TEST(WagnerWhitinDeadline, GenerousDeadlineMatchesUnlimited) {
  const auto inst = random_instance(902, 24);
  rrp::common::FakeClock clock;
  const auto d = rrp::common::Deadline::after(1e9, clock);
  const RentalPlan bounded = solve_drrp_wagner_whitin(inst, d);
  const RentalPlan unbounded = solve_drrp_wagner_whitin(inst);
  EXPECT_NEAR(bounded.cost.total(), unbounded.cost.total(), 1e-12);
}

TEST(WagnerWhitinDeadline, TimeLimitExceededIsAnRrpError) {
  // The DP has no sound partial answer, so expiry surfaces through the
  // ordinary error hierarchy with a diagnosable message.
  const auto inst = random_instance(903, 8);
  rrp::common::FakeClock clock(1.0);
  const auto d = rrp::common::Deadline::after(-1.0, clock);
  try {
    solve_drrp_wagner_whitin(inst, d);
    FAIL() << "expected rrp::TimeLimitExceeded";
  } catch (const rrp::Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
}

}  // namespace
