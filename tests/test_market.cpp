#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "market/auction.hpp"
#include "market/cost_model.hpp"
#include "market/instance_types.hpp"

namespace {

using namespace rrp::market;

TEST(InstanceTypes, PaperEvaluationPricing) {
  // Section V-A: hourly on-demand cost {0.2, 0.4, 0.8} for
  // {c1.medium, m1.large, m1.xlarge}.
  EXPECT_DOUBLE_EQ(info(VmClass::C1Medium).on_demand_hourly, 0.2);
  EXPECT_DOUBLE_EQ(info(VmClass::M1Large).on_demand_hourly, 0.4);
  EXPECT_DOUBLE_EQ(info(VmClass::M1Xlarge).on_demand_hourly, 0.8);
}

TEST(InstanceTypes, EvaluationClassesAreThePaperSet) {
  const auto classes = evaluation_classes();
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_EQ(classes[0], VmClass::C1Medium);
  EXPECT_EQ(classes[1], VmClass::M1Large);
  EXPECT_EQ(classes[2], VmClass::M1Xlarge);
}

TEST(InstanceTypes, VolatilityGrowsWithClassSize) {
  // Figure 3: "more outliers present in more powerful VM class".
  const auto classes = all_classes();
  for (std::size_t i = 1; i < classes.size(); ++i) {
    EXPECT_GE(classes[i].spot_volatility, classes[i - 1].spot_volatility);
    EXPECT_GE(classes[i].spike_probability,
              classes[i - 1].spike_probability);
  }
}

TEST(InstanceTypes, SpotMeanWellBelowOnDemand) {
  for (const auto& c : all_classes()) {
    EXPECT_LT(c.spot_mean_ratio, 0.5);
    EXPECT_GT(c.spot_mean_ratio, 0.1);
  }
}

TEST(InstanceTypes, NameRoundTrip) {
  for (const auto& c : all_classes()) {
    EXPECT_EQ(from_name(c.name), c.id);
    EXPECT_EQ(info(c.id).name, c.name);
  }
  EXPECT_THROW(from_name("t2.micro"), rrp::InvalidArgument);
}

TEST(CostModel, PaperDefaults) {
  const CostModel m = CostModel::paper_defaults();
  EXPECT_NEAR(m.storage(0), 0.1 / 730.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.io(0), 0.2);
  EXPECT_DOUBLE_EQ(m.transfer_in(0), 0.1);
  EXPECT_DOUBLE_EQ(m.transfer_out(0), 0.17);
  EXPECT_DOUBLE_EQ(m.input_output_ratio(), 0.5);
}

TEST(CostModel, DerivedCosts) {
  const CostModel m = CostModel::paper_defaults();
  // Generating 2 GB requires 1 GB transferred in (Phi = 0.5) at $0.1.
  EXPECT_NEAR(m.generation_cost(2.0, 0), 0.1, 1e-12);
  EXPECT_NEAR(m.delivery_cost(2.0, 0), 0.34, 1e-12);
  EXPECT_NEAR(m.holding(0), 0.2 + 0.1 / 730.0, 1e-12);
}

TEST(CostModel, IoScaling) {
  const CostModel m = CostModel::paper_defaults();
  const CostModel scaled = m.with_io_scaled(2.0);
  EXPECT_DOUBLE_EQ(scaled.io(0), 0.4);
  EXPECT_DOUBLE_EQ(scaled.storage(0), m.storage(0));
  EXPECT_THROW(m.with_io_scaled(-1.0), rrp::ContractViolation);
}

TEST(CostModel, RejectsNegativeParameters) {
  CostModel::Parameters p = CostModel::paper_defaults().parameters();
  p.io_per_gb_slot = -0.1;
  EXPECT_THROW(CostModel{p}, rrp::ContractViolation);
}

TEST(Auction, WinnerPaysSpotNotBid) {
  const auto o = settle(/*bid=*/0.5, /*spot=*/0.06, /*on_demand=*/0.2);
  EXPECT_TRUE(o.won);
  EXPECT_DOUBLE_EQ(o.price_paid, 0.06);  // uniform price: pay the spot
}

TEST(Auction, OutOfBidFallsBackToOnDemand) {
  const auto o = settle(0.05, 0.06, 0.2);
  EXPECT_FALSE(o.won);
  EXPECT_DOUBLE_EQ(o.price_paid, 0.2);
}

TEST(Auction, BidEqualToSpotWins) {
  EXPECT_TRUE(settle(0.06, 0.06, 0.2).won);
}

TEST(Auction, HorizonSettlementAndStats) {
  std::vector<double> bids = {0.10, 0.05, 0.10, 0.01};
  std::vector<double> spot = {0.06, 0.06, 0.12, 0.04};
  const auto outcomes = settle_horizon(bids, spot, 0.2);
  ASSERT_EQ(outcomes.size(), 4u);
  const auto s = summarize(outcomes);
  EXPECT_EQ(s.slots, 4u);
  EXPECT_EQ(s.out_of_bid_events, 3u);  // slots 1, 2, 3
  EXPECT_NEAR(s.total_paid, 0.06 + 0.2 + 0.2 + 0.2, 1e-12);
  EXPECT_NEAR(s.out_of_bid_rate(), 0.75, 1e-12);
}

TEST(Auction, MismatchedHorizonRejected) {
  std::vector<double> bids = {0.1};
  std::vector<double> spot = {0.06, 0.07};
  EXPECT_THROW(settle_horizon(bids, spot, 0.2), rrp::ContractViolation);
}

}  // namespace

// -- Availability analysis (paper Section II/IV concern) ----------------

namespace {

using rrp::market::analyze_availability;

TEST(Availability, AllUpWhenBidAboveEverything) {
  std::vector<double> prices = {0.05, 0.06, 0.055, 0.07};
  const auto r = analyze_availability(prices, 1.0);
  EXPECT_DOUBLE_EQ(r.uptime_fraction, 1.0);
  EXPECT_EQ(r.interruptions, 0u);
  EXPECT_DOUBLE_EQ(r.mean_uptime_run, 4.0);
  EXPECT_NEAR(r.mean_price_paid, (0.05 + 0.06 + 0.055 + 0.07) / 4, 1e-12);
}

TEST(Availability, AllDownWhenBidBelowEverything) {
  std::vector<double> prices = {0.05, 0.06};
  const auto r = analyze_availability(prices, 0.01);
  EXPECT_DOUBLE_EQ(r.uptime_fraction, 0.0);
  EXPECT_EQ(r.interruptions, 0u);
  EXPECT_DOUBLE_EQ(r.mean_uptime_run, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_price_paid, 0.0);
}

TEST(Availability, CountsInterruptionsAndRuns) {
  // up up down up down down -> 2 interruptions, up runs {2,1}, down
  // runs {1,2}.
  std::vector<double> prices = {0.05, 0.05, 0.2, 0.05, 0.2, 0.2};
  const auto r = analyze_availability(prices, 0.1);
  EXPECT_NEAR(r.uptime_fraction, 0.5, 1e-12);
  EXPECT_EQ(r.interruptions, 2u);
  EXPECT_NEAR(r.mean_uptime_run, 1.5, 1e-12);
  EXPECT_NEAR(r.mean_downtime_run, 1.5, 1e-12);
}

TEST(Availability, BidEqualPriceCountsAsUp) {
  std::vector<double> prices = {0.06};
  EXPECT_DOUBLE_EQ(analyze_availability(prices, 0.06).uptime_fraction, 1.0);
}

TEST(Availability, HigherBidNeverLowersUptime) {
  std::vector<double> prices;
  rrp::Rng rng(55);
  for (int i = 0; i < 500; ++i) prices.push_back(0.04 + 0.05 * rng.uniform());
  double prev = -1.0;
  for (double bid : {0.05, 0.06, 0.07, 0.08, 0.09}) {
    const double up = analyze_availability(prices, bid).uptime_fraction;
    EXPECT_GE(up, prev);
    prev = up;
  }
}

TEST(Availability, InputValidation) {
  EXPECT_THROW(analyze_availability({}, 0.1), rrp::ContractViolation);
  std::vector<double> prices = {0.05};
  EXPECT_THROW(analyze_availability(prices, 0.0), rrp::ContractViolation);
}

}  // namespace
