#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace {

namespace csv = rrp::csv;

TEST(Csv, ParsesSimpleRows) {
  const auto doc = csv::parse("a,b,c\n1,2,3\n4,5,6\n", true);
  ASSERT_EQ(doc.header.size(), 3u);
  EXPECT_EQ(doc.header[0], "a");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][2], "6");
}

TEST(Csv, NoHeaderMode) {
  const auto doc = csv::parse("1,2\n3,4\n", false);
  EXPECT_TRUE(doc.header.empty());
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "1");
}

TEST(Csv, HandlesQuotedFieldsWithCommas) {
  const auto doc = csv::parse("\"x,y\",plain\n", false);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "x,y");
  EXPECT_EQ(doc.rows[0][1], "plain");
}

TEST(Csv, HandlesDoubledQuotes) {
  const auto doc = csv::parse("\"he said \"\"hi\"\"\"\n", false);
  EXPECT_EQ(doc.rows[0][0], "he said \"hi\"");
}

TEST(Csv, StripsCarriageReturns) {
  const auto doc = csv::parse("a,b\r\n1,2\r\n", true);
  EXPECT_EQ(doc.header[1], "b");
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(Csv, SkipsEmptyLines) {
  const auto doc = csv::parse("1,2\n\n3,4\n", false);
  EXPECT_EQ(doc.rows.size(), 2u);
}

TEST(Csv, EmptyFieldsPreserved) {
  const auto doc = csv::parse("1,,3\n", false);
  ASSERT_EQ(doc.rows[0].size(), 3u);
  EXPECT_EQ(doc.rows[0][1], "");
}

TEST(Csv, EscapeFieldQuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv::escape_field("plain"), "plain");
  EXPECT_EQ(csv::escape_field("a,b"), "\"a,b\"");
  EXPECT_EQ(csv::escape_field("q\"q"), "\"q\"\"q\"");
}

TEST(Csv, WriteRoundTrips) {
  csv::Document doc;
  doc.header = {"t", "price"};
  doc.rows = {{"0", "0.057"}, {"1", "0.06,3"}};
  std::ostringstream os;
  csv::write(os, doc);
  const auto parsed = csv::parse(os.str(), true);
  ASSERT_EQ(parsed.rows.size(), 2u);
  EXPECT_EQ(parsed.rows[1][1], "0.06,3");
}

TEST(Csv, ReadFileThrowsOnMissingPath) {
  EXPECT_THROW(csv::read_file("/nonexistent/nope.csv", true), rrp::Error);
}

TEST(Csv, ReadFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "rrp_csv_test.csv";
  {
    std::ofstream out(path);
    out << "t,v\n0,1.5\n1,2.5\n";
  }
  const auto doc = csv::read_file(path, true);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][1], "2.5");
  std::remove(path.c_str());
}

}  // namespace
