// Compiled with RRP_INVARIANTS_FORCE_OFF (see tests/CMakeLists.txt) to
// prove that the invariant macros are true no-ops in unchecked builds:
// the condition must never be evaluated and nothing may throw, even
// though the condition would fail.
#include "common/invariant.hpp"

#if RRP_INVARIANTS_ENABLED
#error "invariant_off_probe.cpp must be compiled with invariants off"
#endif

namespace rrp_test {

/// Returns true if any disabled invariant macro evaluated its condition.
bool invariant_off_probe_evaluated() {
  bool evaluated = false;
  auto touch = [&evaluated] {
    evaluated = true;
    return false;  // would throw if the macro were active
  };
  RRP_INVARIANT(touch());
  RRP_INVARIANT_MSG(touch(), "never built");
  RRP_DCHECK(touch());
  RRP_DCHECK_MSG(touch(), "never built");
  return evaluated;
}

}  // namespace rrp_test
