#include "core/demand.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace {

using namespace rrp::core;

TEST(Demand, PaperDistributionMoments) {
  rrp::Rng rng(121);
  const auto d = generate_demand(50000, DemandConfig{}, rng);
  EXPECT_NEAR(rrp::stats::mean(d), 0.4, 0.02);
  EXPECT_NEAR(rrp::stats::stddev(d), 0.2, 0.02);
  for (double v : d) EXPECT_GT(v, 0.0);
}

TEST(Demand, MeanSweepUsedBySensitivityAnalysis) {
  rrp::Rng rng(122);
  for (double mean : {0.2, 0.4, 0.8, 1.2, 1.6}) {
    DemandConfig cfg;
    cfg.mean = mean;
    const auto d = generate_demand(20000, cfg, rng);
    EXPECT_NEAR(rrp::stats::mean(d), mean, 0.05 + 0.05 * mean);
  }
}

TEST(Demand, Deterministic) {
  rrp::Rng a(7), b(7);
  const auto da = generate_demand(100, DemandConfig{}, a);
  const auto db = generate_demand(100, DemandConfig{}, b);
  EXPECT_EQ(da, db);
}

TEST(Demand, ConfigValidation) {
  rrp::Rng rng(1);
  DemandConfig bad;
  bad.sd = 0.0;
  EXPECT_THROW(generate_demand(10, bad, rng), rrp::ContractViolation);
  bad = DemandConfig{};
  bad.mean = -0.1;
  EXPECT_THROW(generate_demand(10, bad, rng), rrp::ContractViolation);
}

TEST(Demand, ConstantPattern) {
  const auto d = constant_demand(5, 0.7);
  ASSERT_EQ(d.size(), 5u);
  for (double v : d) EXPECT_DOUBLE_EQ(v, 0.7);
  EXPECT_THROW(constant_demand(3, -1.0), rrp::ContractViolation);
}

TEST(Demand, DiurnalPattern) {
  const auto d = diurnal_demand(48, 1.0, 0.5);
  ASSERT_EQ(d.size(), 48u);
  // Period 24: the pattern repeats.
  for (std::size_t t = 0; t < 24; ++t) EXPECT_NEAR(d[t], d[t + 24], 1e-12);
  // Peak at t=6 (sin max), trough at t=18.
  EXPECT_GT(d[6], d[0]);
  EXPECT_LT(d[18], d[0]);
  for (double v : d) EXPECT_GE(v, 0.0);
}

}  // namespace
