#include "timeseries/arima.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace {

using namespace rrp::ts;

std::vector<double> simulate_arma(std::span<const double> phi,
                                  std::span<const double> theta,
                                  double mean, double sd, std::size_t n,
                                  std::uint64_t seed) {
  rrp::Rng rng(seed);
  std::vector<double> x(n, mean), e(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    e[t] = rng.normal(0.0, sd);
    double v = e[t];
    for (std::size_t l = 0; l < phi.size(); ++l)
      if (t > l) v += phi[l] * (x[t - 1 - l] - mean);
    for (std::size_t l = 0; l < theta.size(); ++l)
      if (t > l) v += theta[l] * e[t - 1 - l];
    x[t] = mean + v;
  }
  return x;
}

TEST(ExpandPoly, PureNonseasonalArPassesThrough) {
  std::vector<double> phi = {0.5, -0.2};
  const auto full = expand_ar(phi, {}, 0);
  ASSERT_EQ(full.size(), 2u);
  EXPECT_DOUBLE_EQ(full[0], 0.5);
  EXPECT_DOUBLE_EQ(full[1], -0.2);
}

TEST(ExpandPoly, SeasonalArCrossTerms) {
  // (1 - 0.5B)(1 - 0.4B^4) = 1 - 0.5B - 0.4B^4 + 0.2B^5.
  std::vector<double> phi = {0.5};
  std::vector<double> sphi = {0.4};
  const auto full = expand_ar(phi, sphi, 4);
  ASSERT_EQ(full.size(), 5u);
  EXPECT_DOUBLE_EQ(full[0], 0.5);
  EXPECT_DOUBLE_EQ(full[1], 0.0);
  EXPECT_DOUBLE_EQ(full[3], 0.4);
  EXPECT_DOUBLE_EQ(full[4], -0.2);
}

TEST(ExpandPoly, SeasonalMaCrossTerms) {
  // (1 + 0.3B)(1 + 0.6B^2) = 1 + 0.3B + 0.6B^2 + 0.18B^3.
  std::vector<double> theta = {0.3};
  std::vector<double> stheta = {0.6};
  const auto full = expand_ma(theta, stheta, 2);
  ASSERT_EQ(full.size(), 3u);
  EXPECT_DOUBLE_EQ(full[0], 0.3);
  EXPECT_DOUBLE_EQ(full[1], 0.6);
  EXPECT_NEAR(full[2], 0.18, 1e-12);
}

TEST(CssResiduals, PureArResidualsRecoverNoise) {
  std::vector<double> phi = {0.7};
  const auto x = simulate_arma(phi, {}, 0.0, 1.0, 500, 71);
  const auto e = css_residuals(x, phi, {});
  // Residual variance should be close to the innovation variance 1.
  std::vector<double> tail(e.begin() + 10, e.end());
  EXPECT_NEAR(rrp::stats::variance(tail), 1.0, 0.2);
}

TEST(FitSarima, RecoversAr1Coefficient) {
  std::vector<double> phi = {0.7};
  const auto x = simulate_arma(phi, {}, 5.0, 1.0, 3000, 72);
  SarimaOrder order;
  order.p = 1;
  const auto m = fit_sarima(x, order);
  ASSERT_EQ(m.phi.size(), 1u);
  EXPECT_NEAR(m.phi[0], 0.7, 0.07);
  EXPECT_TRUE(m.has_mean);
  EXPECT_NEAR(m.mean, 5.0, 0.3);
  EXPECT_NEAR(m.sigma2, 1.0, 0.15);
}

TEST(FitSarima, RecoversAr2Coefficients) {
  std::vector<double> phi = {0.5, 0.3};
  const auto x = simulate_arma(phi, {}, 0.0, 1.0, 4000, 73);
  SarimaOrder order;
  order.p = 2;
  const auto m = fit_sarima(x, order);
  EXPECT_NEAR(m.phi[0], 0.5, 0.08);
  EXPECT_NEAR(m.phi[1], 0.3, 0.08);
}

TEST(FitSarima, RecoversMa1Coefficient) {
  std::vector<double> theta = {0.6};
  const auto x = simulate_arma({}, theta, 0.0, 1.0, 4000, 74);
  SarimaOrder order;
  order.q = 1;
  const auto m = fit_sarima(x, order);
  EXPECT_NEAR(m.theta[0], 0.6, 0.1);
}

TEST(FitSarima, FittedArIsStationaryEvenOnHardData) {
  // A near-random-walk series: the constrained parametrisation must
  // return |phi| < 1.
  rrp::Rng rng(75);
  std::vector<double> x(800, 0.0);
  for (std::size_t t = 1; t < x.size(); ++t)
    x[t] = 0.999 * x[t - 1] + rng.normal(0.0, 0.01);
  SarimaOrder order;
  order.p = 1;
  SarimaFitOptions opt;
  opt.mean = SarimaFitOptions::Mean::Exclude;
  const auto m = fit_sarima(x, order, opt);
  EXPECT_LT(std::fabs(m.phi[0]), 1.0);
}

TEST(FitSarima, InformationCriteriaOrdering) {
  const std::vector<double> phi_in = {0.5};
  const auto x = simulate_arma(phi_in, {}, 0.0, 1.0, 500, 76);
  SarimaOrder order;
  order.p = 1;
  const auto m = fit_sarima(x, order);
  EXPECT_GT(m.aicc, m.aic);        // finite-sample correction adds
  EXPECT_GT(m.bic, m.aic);         // log(n) > 2 for n >= 8
  EXPECT_LT(m.log_likelihood, 0.0);
}

TEST(FitSarima, DifferencedModelExcludesMeanByDefault) {
  rrp::Rng rng(77);
  std::vector<double> x(300, 0.0);
  for (std::size_t t = 1; t < x.size(); ++t)
    x[t] = x[t - 1] + rng.normal(0.1, 1.0);  // drifting random walk
  SarimaOrder order;
  order.p = 1;
  order.d = 1;
  const auto m = fit_sarima(x, order);
  EXPECT_FALSE(m.has_mean);
  EXPECT_DOUBLE_EQ(m.mean, 0.0);
}

TEST(FitSarima, RejectsTooShortSeries) {
  std::vector<double> x = {1.0, 2.0, 1.5};
  SarimaOrder order;
  order.p = 2;
  EXPECT_THROW(fit_sarima(x, order), rrp::ContractViolation);
}

TEST(Forecast, Ar1ForecastDecaysTowardMean) {
  std::vector<double> phi = {0.8};
  const auto x = simulate_arma(phi, {}, 10.0, 0.5, 2000, 78);
  SarimaOrder order;
  order.p = 1;
  const auto m = fit_sarima(x, order);
  const auto f = forecast(m, x, 50);
  ASSERT_EQ(f.size(), 50u);
  // Far-horizon forecasts approach the estimated process mean.
  EXPECT_NEAR(f.back(), m.mean, 0.2);
  // Successive forecasts contract toward the mean monotonically.
  const double d0 = std::fabs(f[0] - m.mean);
  const double d10 = std::fabs(f[10] - m.mean);
  EXPECT_LE(d10, d0 + 1e-9);
}

TEST(Forecast, RandomWalkForecastIsFlat) {
  rrp::Rng rng(79);
  std::vector<double> x(500, 0.0);
  for (std::size_t t = 1; t < x.size(); ++t)
    x[t] = x[t - 1] + rng.normal(0.0, 1.0);
  SarimaOrder order;  // ARIMA(0,1,0): pure random walk
  order.d = 1;
  order.p = 1;        // with a near-zero AR term on the differences
  const auto m = fit_sarima(x, order);
  const auto f = forecast(m, x, 10);
  for (double v : f) EXPECT_NEAR(v, x.back(), 1.5);
}

TEST(Forecast, SeasonalModelRepeatsPattern) {
  // Strongly seasonal series with period 12 and seasonal AR.
  rrp::Rng rng(80);
  const std::size_t s = 12;
  std::vector<double> x(1200);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = 3.0 * std::sin(2.0 * M_PI * static_cast<double>(t % s) /
                          static_cast<double>(s)) +
           rng.normal(0.0, 0.2);
  }
  SarimaOrder order;
  order.P = 1;
  order.s = s;
  const auto m = fit_sarima(x, order);
  const auto f = forecast(m, x, s);
  // The forecast should correlate strongly with the true seasonal shape.
  std::vector<double> truth(s);
  for (std::size_t i = 0; i < s; ++i) {
    truth[i] = 3.0 * std::sin(2.0 * M_PI *
                              static_cast<double>((x.size() + i) % s) /
                              static_cast<double>(s));
  }
  EXPECT_GT(rrp::stats::pearson_correlation(f, truth), 0.8);
}

TEST(Forecast, MeanForecastBaseline) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  const auto f = mean_forecast(x, 4);
  ASSERT_EQ(f.size(), 4u);
  for (double v : f) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Forecast, BeatsOrMatchesMeanBaselineInSample) {
  // On an AR(1) with strong dependence, model forecasts must beat the
  // mean predictor on one-step holdout MSE.
  std::vector<double> phi = {0.9};
  const auto x = simulate_arma(phi, {}, 0.0, 1.0, 2100, 81);
  std::vector<double> train(x.begin(), x.end() - 100);
  SarimaOrder order;
  order.p = 1;
  const auto m = fit_sarima(train, order);

  std::vector<double> model_pred, mean_pred, actual;
  std::vector<double> hist = train;
  for (std::size_t i = 0; i < 100; ++i) {
    model_pred.push_back(forecast(m, hist, 1)[0]);
    mean_pred.push_back(mean_forecast(hist, 1)[0]);
    actual.push_back(x[train.size() + i]);
    hist.push_back(actual.back());
  }
  EXPECT_LT(rrp::stats::mse(actual, model_pred),
            rrp::stats::mse(actual, mean_pred));
}

}  // namespace

// -- Prediction intervals ------------------------------------------------

namespace {

using namespace rrp::ts;

TEST(PsiWeights, Ar1GeometricDecay) {
  SarimaModel m;
  m.order.p = 1;
  m.phi = {0.6};
  m.ar_full = expand_ar(m.phi, {}, 0);
  m.sigma2 = 1.0;
  const auto psi = psi_weights(m, 6);
  for (std::size_t j = 0; j < 6; ++j)
    EXPECT_NEAR(psi[j], std::pow(0.6, static_cast<double>(j)), 1e-12);
}

TEST(PsiWeights, Ma1Truncates) {
  SarimaModel m;
  m.order.q = 1;
  m.theta = {0.4};
  m.ma_full = expand_ma(m.theta, {}, 0);
  const auto psi = psi_weights(m, 5);
  EXPECT_DOUBLE_EQ(psi[0], 1.0);
  EXPECT_DOUBLE_EQ(psi[1], 0.4);
  for (std::size_t j = 2; j < 5; ++j) EXPECT_DOUBLE_EQ(psi[j], 0.0);
}

TEST(PsiWeights, RandomWalkWeightsAreOne) {
  SarimaModel m;
  m.order.d = 1;
  const auto psi = psi_weights(m, 5);
  for (double v : psi) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(ForecastInterval, WidthsGrowWithHorizon) {
  std::vector<double> phi = {0.7};
  const auto x = simulate_arma(phi, {}, 0.0, 1.0, 2000, 211);
  SarimaOrder order;
  order.p = 1;
  const auto m = fit_sarima(x, order);
  const auto fi = forecast_interval(m, x, 12);
  double prev = 0.0;
  for (std::size_t step = 0; step < 12; ++step) {
    const double width = fi.upper[step] - fi.lower[step];
    EXPECT_GE(width, prev - 1e-9);
    EXPECT_GT(width, 0.0);
    prev = width;
  }
}

TEST(ForecastInterval, Ar1VarianceMatchesTheory) {
  std::vector<double> phi = {0.8};
  const auto x = simulate_arma(phi, {}, 0.0, 1.0, 5000, 212);
  SarimaOrder order;
  order.p = 1;
  const auto m = fit_sarima(x, order);
  const auto fi = forecast_interval(m, x, 10, 0.95);
  const double z = 1.959963984540054;
  const double fitted_phi = m.phi[0];
  for (std::size_t step = 0; step < 10; ++step) {
    const double hd = static_cast<double>(step + 1);
    const double var = m.sigma2 *
                       (1.0 - std::pow(fitted_phi, 2.0 * hd)) /
                       (1.0 - fitted_phi * fitted_phi);
    const double width = fi.upper[step] - fi.lower[step];
    EXPECT_NEAR(width, 2.0 * z * std::sqrt(var), 1e-6 + 0.01 * width);
  }
}

TEST(ForecastInterval, EmpiricalCoverageNear95) {
  // Fit once, then check how often the next 3 observations fall inside
  // the 95% band across many simulated continuations.
  std::vector<double> phi = {0.6};
  const auto x = simulate_arma(phi, {}, 0.0, 1.0, 3000, 213);
  SarimaOrder order;
  order.p = 1;
  const auto m = fit_sarima(x, order);

  rrp::Rng rng(214);
  int inside = 0, total = 0;
  for (int trial = 0; trial < 300; ++trial) {
    // Simulate a 3-step continuation of the fitted process.
    std::vector<double> cont = x;
    const auto fi = forecast_interval(m, x, 3);
    for (int step = 0; step < 3; ++step) {
      double v = rng.normal(0.0, 1.0);
      v += m.mean + m.phi[0] * (cont.back() - m.mean);
      cont.push_back(v);
      ++total;
      if (v >= fi.lower[static_cast<std::size_t>(step)] &&
          v <= fi.upper[static_cast<std::size_t>(step)])
        ++inside;
    }
  }
  const double coverage = static_cast<double>(inside) / total;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LT(coverage, 0.99);
}

TEST(ForecastInterval, LevelValidation) {
  std::vector<double> phi = {0.5};
  const auto x = simulate_arma(phi, {}, 0.0, 1.0, 500, 215);
  SarimaOrder order;
  order.p = 1;
  const auto m = fit_sarima(x, order);
  EXPECT_THROW(forecast_interval(m, x, 3, 0.0), rrp::ContractViolation);
  EXPECT_THROW(forecast_interval(m, x, 3, 1.0), rrp::ContractViolation);
}

// --- refit_sarima drift tiers (ISSUE 10) -------------------------------
//
// The maintenance ladder: same-character data keeps the incumbent
// verbatim; innovation variance past warm_variance_ratio buys a warm
// re-estimate; past scratch_variance_ratio a cold one.  The variance
// ratio is (residual variance on new data) / (incumbent sigma2), so
// scaling the innovation sd by c moves the ratio to ~c^2.

SarimaModel ar1_incumbent(double phi_val, std::uint64_t seed) {
  std::vector<double> phi = {phi_val};
  const auto x = simulate_arma(phi, {}, 0.0, 1.0, 600, seed);
  SarimaOrder order;
  order.p = 1;
  return fit_sarima(x, order);
}

TEST(RefitSarima, SameProcessKeepsIncumbentVerbatim) {
  const auto incumbent = ar1_incumbent(0.6, 301);
  std::vector<double> phi = {0.6};
  const auto fresh = simulate_arma(phi, {}, 0.0, 1.0, 400, 302);
  const auto r = refit_sarima(incumbent, fresh);
  EXPECT_EQ(r.action, SarimaRefitAction::Kept);
  EXPECT_NEAR(r.variance_ratio, 1.0, 0.3);
  EXPECT_GE(r.ljung_box_p, 0.01);
  // Kept means KEPT: the returned model is the incumbent bit for bit.
  ASSERT_EQ(r.model.ar_full.size(), incumbent.ar_full.size());
  EXPECT_EQ(r.model.ar_full[0], incumbent.ar_full[0]);
  EXPECT_EQ(r.model.sigma2, incumbent.sigma2);
  EXPECT_EQ(r.model.mean, incumbent.mean);
}

TEST(RefitSarima, MildVarianceDriftTriggersWarmRefit) {
  const auto incumbent = ar1_incumbent(0.6, 303);
  std::vector<double> phi = {0.6};
  // sd 1.5 => variance ratio ~2.25, between warm (1.5) and scratch (3).
  const auto drifted = simulate_arma(phi, {}, 0.0, 1.5, 400, 304);
  const auto r = refit_sarima(incumbent, drifted);
  EXPECT_EQ(r.action, SarimaRefitAction::WarmRefit);
  EXPECT_GT(r.variance_ratio, 1.5);
  EXPECT_LE(r.variance_ratio, 3.0);
  // The refit absorbed the new innovation variance...
  EXPECT_NEAR(r.model.sigma2, 2.25, 0.6);
  // ...while the AR structure (unchanged in the data) is retained.
  EXPECT_NEAR(r.model.ar_full[0], 0.6, 0.15);
}

TEST(RefitSarima, SevereDriftEscalatesToScratchRefit) {
  const auto incumbent = ar1_incumbent(0.6, 305);
  std::vector<double> phi = {0.6};
  // sd 2.5 => variance ratio ~6.25, past the scratch threshold.
  const auto drifted = simulate_arma(phi, {}, 0.0, 2.5, 400, 306);
  const auto r = refit_sarima(incumbent, drifted);
  EXPECT_EQ(r.action, SarimaRefitAction::ScratchRefit);
  EXPECT_GT(r.variance_ratio, 3.0);
  EXPECT_NEAR(r.model.sigma2, 6.25, 1.6);
}

TEST(RefitSarima, RefitCostIsBoundedByDiagnosticWindow) {
  // The refit fits on the tail only: a model maintained against a huge
  // history must equal one maintained against just that tail.
  const auto incumbent = ar1_incumbent(0.5, 307);
  std::vector<double> phi = {0.5};
  const auto huge = simulate_arma(phi, {}, 0.0, 1.8, 5000, 308);
  SarimaRefitOptions opt;
  opt.diagnostic_window = 336;
  const auto from_huge = refit_sarima(incumbent, huge, opt);
  const std::span<const double> tail(huge.data() + huge.size() - 336, 336);
  const auto from_tail = refit_sarima(incumbent, tail, opt);
  EXPECT_EQ(from_huge.action, from_tail.action);
  EXPECT_EQ(from_huge.variance_ratio, from_tail.variance_ratio);
  EXPECT_EQ(from_huge.model.sigma2, from_tail.model.sigma2);
  ASSERT_EQ(from_huge.model.ar_full.size(), from_tail.model.ar_full.size());
  EXPECT_EQ(from_huge.model.ar_full[0], from_tail.model.ar_full[0]);
}

TEST(RefitSarima, RejectsWindowTooShortForDiagnostics) {
  // min_window for AR(1) with the default 24 Ljung-Box lags is 50.
  const auto incumbent = ar1_incumbent(0.6, 309);
  std::vector<double> phi = {0.6};
  const auto tiny = simulate_arma(phi, {}, 0.0, 1.0, 49, 310);
  EXPECT_THROW(refit_sarima(incumbent, tiny), rrp::ContractViolation);
}

}  // namespace
