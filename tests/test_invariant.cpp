// Tests for the RRP_INVARIANT/RRP_DCHECK framework (common/invariant.hpp):
// violations throw rrp::ContractViolation carrying file/line, evaluated
// checks are counted, disabled macros compile to no-ops (see
// invariant_off_probe.cpp), and a deliberately corrupted simplex basis
// is caught by rrp::lp::verify_basis.

// Capture whether the *library* was built with checks before forcing
// them on for this translation unit.
#if defined(RRP_ENABLE_INVARIANTS)
#define RRP_TEST_LIBRARY_CHECKED 1
#else
#define RRP_TEST_LIBRARY_CHECKED 0
#define RRP_ENABLE_INVARIANTS 1
#endif

#include "common/invariant.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/scenario_tree.hpp"
#include "lp/simplex.hpp"

static_assert(RRP_INVARIANTS_ENABLED,
              "this translation unit must have invariants enabled");

namespace rrp_test {
bool invariant_off_probe_evaluated();  // defined in invariant_off_probe.cpp
}  // namespace rrp_test

namespace {

using rrp::ContractViolation;

TEST(Invariant, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(RRP_INVARIANT(1 + 1 == 2));
  EXPECT_NO_THROW(RRP_DCHECK(true));
  EXPECT_NO_THROW(RRP_INVARIANT_MSG(true, "unused"));
}

TEST(Invariant, ViolationThrowsContractViolationWithFileAndLine) {
  try {
    RRP_INVARIANT_MSG(1 == 2, "deliberate test violation");
    FAIL() << "RRP_INVARIANT_MSG did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant"), std::string::npos) << what;
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
    EXPECT_NE(what.find("test_invariant.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("deliberate test violation"), std::string::npos)
        << what;
    EXPECT_NE(std::string(e.file()).find("test_invariant.cpp"),
              std::string::npos);
    EXPECT_GT(e.line(), 0);
  }
}

TEST(Invariant, DcheckViolationIsLabelled) {
  try {
    RRP_DCHECK(false);
    FAIL() << "RRP_DCHECK did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("dcheck"), std::string::npos);
  }
}

TEST(Invariant, EvaluatedChecksAreCounted) {
  const std::uint64_t before = rrp::invariant_checks_executed();
  RRP_INVARIANT(true);
  RRP_DCHECK(true);
  EXPECT_GE(rrp::invariant_checks_executed(), before + 2);
}

TEST(Invariant, DisabledMacrosNeverEvaluateTheCondition) {
  // invariant_off_probe.cpp is compiled with RRP_INVARIANTS_FORCE_OFF;
  // if the no-op expansion evaluated (or enforced) its condition this
  // would either return true or throw.
  EXPECT_FALSE(rrp_test::invariant_off_probe_evaluated());
}

TEST(SimplexBasis, ConsistentBasisPasses) {
  const std::vector<std::size_t> basis{2, 0, 5};
  EXPECT_NO_THROW(rrp::lp::verify_basis(3, 6, basis));
}

TEST(SimplexBasis, CorruptedBasisDuplicateEntryCaught) {
  // Position 0 and 1 both claim column 2 as basic.
  const std::vector<std::size_t> basis{2, 2, 5};
  try {
    rrp::lp::verify_basis(3, 6, basis);
    FAIL() << "duplicate basic column not caught";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("distinct"), std::string::npos)
        << e.what();
  }
}

TEST(SimplexBasis, CorruptedBasisOutOfRangeCaught) {
  const std::vector<std::size_t> basis{2, 9, 5};
  EXPECT_THROW(rrp::lp::verify_basis(3, 6, basis), ContractViolation);
}

TEST(SimplexBasis, CorruptedBasisWrongSizeCaught) {
  const std::vector<std::size_t> basis{2, 5};
  EXPECT_THROW(rrp::lp::verify_basis(3, 6, basis), ContractViolation);
}

TEST(ScenarioTreeInvariant, BuiltTreeValidates) {
  using rrp::core::PricePoint;
  const std::vector<std::vector<PricePoint>> supports{
      {{0.1, 0.5, false}, {0.3, 0.5, false}},
      {{0.1, 0.25, false}, {0.2, 0.25, false}, {0.4, 0.5, true}},
  };
  const auto tree = rrp::core::ScenarioTree::build(supports);
  EXPECT_NO_THROW(tree.validate());
}

#if RRP_TEST_LIBRARY_CHECKED
TEST(InvariantIntegration, SolverExercisesInvariants) {
  // In RRP_CHECK_INVARIANTS builds a simplex solve must actually run
  // its internal checks, observable through the process-wide counter.
  const std::uint64_t before = rrp::invariant_checks_executed();
  rrp::lp::LinearProgram lp;
  const auto x = lp.add_variable(0.0, 10.0, 1.0, "x");
  const auto y = lp.add_variable(0.0, 10.0, 2.0, "y");
  lp.add_row({{x, 1.0}, {y, 1.0}}, 4.0, rrp::lp::kInfinity, "cover");
  const auto sol = rrp::lp::solve(lp);
  EXPECT_EQ(sol.status, rrp::lp::SolveStatus::Optimal);
  EXPECT_GT(rrp::invariant_checks_executed(), before);
}
#endif

}  // namespace
