#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace {

using rrp::Table;

TEST(Table, PrintsTitleHeaderAndRows) {
  Table t("Demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1.0"});
  t.add_row({"beta", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
}

TEST(Table, RejectsMismatchedRowArity) {
  Table t("Demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), rrp::ContractViolation);
}

TEST(Table, HeaderAfterRowsRejected) {
  Table t("Demo");
  t.set_header({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.set_header({"x", "y"}), rrp::ContractViolation);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, PctFormatsFractions) {
  EXPECT_EQ(Table::pct(0.5, 1), "50.0%");
  EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
}

TEST(Sparkline, EmptyAndFlatInputs) {
  EXPECT_TRUE(rrp::sparkline({}, 10).empty());
  const auto flat = rrp::sparkline({1.0, 1.0, 1.0}, 10);
  EXPECT_EQ(flat.size(), 10u);
}

TEST(Sparkline, MonotoneSeriesUsesIncreasingLevels) {
  std::vector<double> ramp;
  for (int i = 0; i < 64; ++i) ramp.push_back(static_cast<double>(i));
  const auto s = rrp::sparkline(ramp, 8);
  EXPECT_EQ(s.size(), 8u);
  EXPECT_NE(s.front(), s.back());
}

}  // namespace
