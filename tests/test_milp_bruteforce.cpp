// Property test: branch & bound against a brute-force oracle.
//
// For small random MILPs over binary variables we can enumerate every
// 0/1 assignment, check feasibility directly and take the best
// objective — an oracle independent of every solver code path.  B&B
// must match it exactly (status and optimum) across a randomised sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "milp/branch_and_bound.hpp"

namespace {

using namespace rrp::milp;

struct RandomMilp {
  Model model;
  std::vector<std::vector<double>> row_coeffs;  // dense per row
  std::vector<double> row_lo, row_hi;
  std::vector<double> objective;
  bool maximize = false;
};

RandomMilp make_random_binary_milp(std::uint64_t seed, std::size_t n_vars,
                                   std::size_t n_rows) {
  rrp::Rng rng(seed);
  RandomMilp r;
  r.maximize = rng.bernoulli(0.5);
  std::vector<Var> vars;
  LinExpr objective;
  for (std::size_t j = 0; j < n_vars; ++j) {
    vars.push_back(r.model.add_binary());
    r.objective.push_back(rng.uniform(-5.0, 5.0));
    objective += r.objective.back() * LinExpr(vars.back());
  }
  r.model.set_objective(std::move(objective), r.maximize
                                                  ? Objective::Maximize
                                                  : Objective::Minimize);
  for (std::size_t row = 0; row < n_rows; ++row) {
    LinExpr expr;
    std::vector<double> coeffs(n_vars, 0.0);
    for (std::size_t j = 0; j < n_vars; ++j) {
      if (rng.bernoulli(0.6)) {
        coeffs[j] = rng.uniform(-3.0, 3.0);
        expr += coeffs[j] * LinExpr(Var{j});
      }
    }
    // Bounds anchored near the all-half point so instances are usually
    // (but not always) feasible.
    double mid = 0.0;
    for (double c : coeffs) mid += 0.5 * c;
    const double lo = mid - rng.uniform(0.0, 2.0);
    const double hi = mid + rng.uniform(0.0, 2.0);
    r.model.add_constraint(Constraint{expr, lo, hi});
    r.row_coeffs.push_back(std::move(coeffs));
    r.row_lo.push_back(lo);
    r.row_hi.push_back(hi);
  }
  return r;
}

/// Enumerates all assignments; returns (found_feasible, best objective).
std::pair<bool, double> brute_force(const RandomMilp& r,
                                    std::size_t n_vars) {
  bool found = false;
  double best = r.maximize ? -std::numeric_limits<double>::infinity()
                           : std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n_vars); ++mask) {
    bool feasible = true;
    for (std::size_t row = 0; row < r.row_coeffs.size() && feasible;
         ++row) {
      double ax = 0.0;
      for (std::size_t j = 0; j < n_vars; ++j)
        if (mask & (std::size_t{1} << j)) ax += r.row_coeffs[row][j];
      if (ax < r.row_lo[row] - 1e-9 || ax > r.row_hi[row] + 1e-9)
        feasible = false;
    }
    if (!feasible) continue;
    double obj = 0.0;
    for (std::size_t j = 0; j < n_vars; ++j)
      if (mask & (std::size_t{1} << j)) obj += r.objective[j];
    found = true;
    best = r.maximize ? std::max(best, obj) : std::min(best, obj);
  }
  return {found, best};
}

class BnbVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(BnbVsBruteForce, StatusAndOptimumMatch) {
  const std::size_t n_vars = 4 + static_cast<std::size_t>(GetParam()) % 7;
  const std::size_t n_rows = 1 + static_cast<std::size_t>(GetParam()) % 4;
  const auto r = make_random_binary_milp(
      31000 + static_cast<std::uint64_t>(GetParam()), n_vars, n_rows);
  const auto [feasible, best] = brute_force(r, n_vars);
  const MipResult result = solve(r.model);
  if (!feasible) {
    EXPECT_EQ(result.status, MipStatus::Infeasible) << "vars " << n_vars;
    return;
  }
  ASSERT_EQ(result.status, MipStatus::Optimal)
      << "vars " << n_vars << " rows " << n_rows;
  EXPECT_NEAR(result.objective, best, 1e-6);
  // The incumbent must be binary and satisfy every row.
  for (std::size_t j = 0; j < n_vars; ++j) {
    EXPECT_NEAR(result.x[j], std::round(result.x[j]), 1e-7);
  }
  for (std::size_t row = 0; row < r.row_coeffs.size(); ++row) {
    double ax = 0.0;
    for (std::size_t j = 0; j < n_vars; ++j)
      ax += r.row_coeffs[row][j] * std::round(result.x[j]);
    EXPECT_GE(ax, r.row_lo[row] - 1e-6);
    EXPECT_LE(ax, r.row_hi[row] + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BnbVsBruteForce, ::testing::Range(0, 40));

}  // namespace
