#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace {

using rrp::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng a(99), b(99);
  Rng childa = a.split();
  Rng childb = b.split();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(childa(), childb());
  // Parent and child produce different sequences.
  Rng parent(99);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformRangeRejectsEmptyInterval) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(2.0, 2.0), rrp::ContractViolation);
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(6);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(8);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.normal(2.0, 3.0);
  EXPECT_NEAR(rrp::stats::mean(xs), 2.0, 0.05);
  EXPECT_NEAR(rrp::stats::stddev(xs), 3.0, 0.05);
}

TEST(Rng, TruncatedNormalRespectsFloor) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.truncated_normal(0.4, 0.2, 0.0), 0.0);
  }
}

TEST(Rng, TruncatedNormalMatchesPaperDemandRegime) {
  // The paper samples demand from N(0.4, 0.2) "always positive"; with
  // this mild truncation the mean shifts only slightly upward.
  Rng rng(10);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.truncated_normal(0.4, 0.2, 0.0);
  EXPECT_NEAR(rrp::stats::mean(xs), 0.4, 0.02);
  EXPECT_GT(rrp::stats::mean(xs), 0.4);  // truncation biases up
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(11);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.exponential(2.0);
  EXPECT_NEAR(rrp::stats::mean(xs), 0.5, 0.02);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(12);
  double total = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(total / n, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(13);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.poisson(80.0));
  EXPECT_NEAR(total / n, 80.0, 0.5);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(14);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, CategoricalMatchesWeights) {
  Rng rng(16);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0] / 50000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 50000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[2] / 50000.0, 0.6, 0.02);
}

TEST(Rng, CategoricalRejectsAllZeroWeights) {
  Rng rng(17);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(w), rrp::ContractViolation);
}

TEST(Rng, CategoricalRejectsNegativeWeights) {
  Rng rng(18);
  std::vector<double> w = {0.5, -0.1};
  EXPECT_THROW(rng.categorical(w), rrp::ContractViolation);
}

}  // namespace
