// Determinism and robustness of the parallel, warm-started branch &
// bound (ISSUE 5).  The contract under test:
//
//   * With zero gap tolerances and most-fractional branching, the final
//     optimal objective and proven bound are *bit-identical* across any
//     jobs count — parallel exploration may visit a different set of
//     nodes, but every pruned subtree is dominated by the incumbent, so
//     the returned optimum cannot depend on scheduling.
//   * Warm starts change the pivot paths (hence the tree), never the
//     answer: warm-on vs warm-off agree to LP tolerance.
//   * Injected LP failures and fake-clock deadlines are absorbed under
//     parallelism exactly as in the serial solver (this file is part of
//     the TSan suite — see tests/CMakeLists.txt and the CI matrix).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/deadline.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "milp/branch_and_bound.hpp"

namespace {

using namespace rrp::milp;

// Same random lot-sizing family as test_anytime_property.cpp: binary
// setup y_t, continuous order alpha_t <= M*y_t, non-negative carried
// inventory.  Always feasible.
struct LotSizing {
  std::vector<double> demand, price;
  double setup_cost = 0.0, storage_cost = 0.0, big_m = 0.0;
  std::vector<Var> y, alpha, beta;
  Model model;

  explicit LotSizing(rrp::Rng& rng, int min_horizon = 3, int extra = 5) {
    const int horizon =
        min_horizon + static_cast<int>(rng.uniform(0.0, 1.0 * extra));
    setup_cost = rng.uniform(1.0, 8.0);
    storage_cost = rng.uniform(0.05, 0.5);
    double total_demand = 0.0;
    for (int t = 0; t < horizon; ++t) {
      demand.push_back(std::floor(rng.uniform(0.0, 6.0)));
      price.push_back(rng.uniform(0.5, 4.0));
      total_demand += demand.back();
    }
    big_m = total_demand + 1.0;
    LinExpr cost;
    for (int t = 0; t < horizon; ++t) {
      y.push_back(model.add_binary());
      alpha.push_back(model.add_continuous(0.0, big_m));
      beta.push_back(model.add_continuous(0.0, big_m));
      cost += setup_cost * LinExpr(y[t]) + price[t] * LinExpr(alpha[t]) +
              storage_cost * LinExpr(beta[t]);
      model.add_constraint(LinExpr(alpha[t]) - big_m * LinExpr(y[t]) <= 0.0);
      LinExpr balance = LinExpr(alpha[t]) - LinExpr(beta[t]);
      if (t > 0) balance += LinExpr(beta[t - 1]);
      model.add_constraint(std::move(balance) == demand[t]);
    }
    model.set_objective(std::move(cost), Objective::Minimize);
  }

  void expect_feasible(const std::vector<double>& x) const {
    const double tol = 1e-5;
    double inventory = 0.0;
    for (std::size_t t = 0; t < demand.size(); ++t) {
      const double yt = x[y[t].id];
      const double at = x[alpha[t].id];
      EXPECT_NEAR(yt, std::round(yt), tol) << "y[" << t << "] not integral";
      EXPECT_GE(at, -tol);
      EXPECT_LE(at, big_m * yt + tol) << "order without setup at " << t;
      inventory += at - demand[t];
      EXPECT_GE(inventory, -tol) << "negative inventory at " << t;
      EXPECT_NEAR(x[beta[t].id], inventory, tol);
    }
  }
};

// Zero gap margins + most-fractional branching: the settings under
// which the final objective is exploration-order independent.
BnbOptions exact_options() {
  BnbOptions opt;
  opt.absolute_gap = 0.0;
  opt.relative_gap = 0.0;
  opt.branching = Branching::MostFractional;
  return opt;
}

TEST(ParallelBnb, BitIdenticalObjectiveAcrossJobCounts) {
  rrp::Rng rng(42);
  std::size_t parallel_multinode = 0;
  for (int trial = 0; trial < 30; ++trial) {
    LotSizing inst(rng);

    BnbOptions opt = exact_options();
    opt.jobs = 1;
    const MipResult serial = solve(inst.model, opt);
    ASSERT_EQ(serial.status, MipStatus::Optimal) << "trial " << trial;
    inst.expect_feasible(serial.x);

    for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
      opt.jobs = jobs;
      const MipResult parallel = solve(inst.model, opt);
      ASSERT_EQ(parallel.status, MipStatus::Optimal)
          << "trial " << trial << " jobs " << jobs;
      // Bit-identical, not approximately equal: parallel scheduling
      // must not leak into the answer.
      EXPECT_EQ(parallel.objective, serial.objective)
          << "trial " << trial << " jobs " << jobs;
      EXPECT_EQ(parallel.best_bound, serial.best_bound)
          << "trial " << trial << " jobs " << jobs;
      inst.expect_feasible(parallel.x);
      if (parallel.nodes_explored > 1) ++parallel_multinode;
    }
  }
  // The suite must actually exercise multi-node parallel trees, not
  // just root solves.
  EXPECT_GT(parallel_multinode, 10u);
}

TEST(ParallelBnb, DepthFirstAlsoDeterministicAcrossJobs) {
  rrp::Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    LotSizing inst(rng);
    BnbOptions opt = exact_options();
    opt.node_selection = NodeSelection::DepthFirst;
    opt.jobs = 1;
    const MipResult serial = solve(inst.model, opt);
    ASSERT_EQ(serial.status, MipStatus::Optimal);
    opt.jobs = 8;
    const MipResult parallel = solve(inst.model, opt);
    ASSERT_EQ(parallel.status, MipStatus::Optimal);
    EXPECT_EQ(parallel.objective, serial.objective) << "trial " << trial;
  }
}

TEST(ParallelBnb, WarmStartsMatchColdSolvesAndAreCounted) {
  rrp::Rng rng(2025);
  std::size_t warm_total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    LotSizing inst(rng);

    BnbOptions opt = exact_options();
    opt.warm_start = false;
    const MipResult cold = solve(inst.model, opt);
    ASSERT_EQ(cold.status, MipStatus::Optimal) << "trial " << trial;
    EXPECT_EQ(cold.warm_started_nodes, 0u);
    EXPECT_GT(cold.cold_solved_nodes, 0u);

    opt.warm_start = true;
    const MipResult warm = solve(inst.model, opt);
    ASSERT_EQ(warm.status, MipStatus::Optimal) << "trial " << trial;
    // Warm vs cold may explore different trees (different alternative
    // optima at a node), so the comparison is numeric, not bitwise.
    EXPECT_NEAR(warm.objective, cold.objective, 1e-6) << "trial " << trial;
    inst.expect_feasible(warm.x);
    warm_total += warm.warm_started_nodes;
    // Every counted LP is attached to a popped node (pruned nodes solve
    // no LP, so the sum is at most nodes_explored and at least 1: the
    // root always solves).
    EXPECT_GE(warm.warm_started_nodes + warm.cold_solved_nodes, 1u);
    EXPECT_LE(warm.warm_started_nodes + warm.cold_solved_nodes,
              warm.nodes_explored);
  }
  // The point of the feature: most node LPs should actually warm start.
  EXPECT_GT(warm_total, 20u);
}

TEST(ParallelBnb, JobsZeroMeansHardwareConcurrency) {
  rrp::Rng rng(11);
  LotSizing inst(rng);
  BnbOptions opt = exact_options();
  opt.jobs = 0;
  const MipResult r = solve(inst.model, opt);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  inst.expect_feasible(r.x);
}

TEST(ParallelBnb, AnytimeContractHoldsUnderParallelism) {
  // Node and fake-clock time limits with 8 workers: every result must
  // still be a well-formed anytime answer (feasible incumbent + sound
  // bound, or an honest NoIncumbent).
  rrp::Rng rng(321);
  int limit_path = 0, optimal = 0;
  for (int trial = 0; trial < 25; ++trial) {
    LotSizing inst(rng, 4, 5);
    const MipResult exact = solve(inst.model, exact_options());
    ASSERT_EQ(exact.status, MipStatus::Optimal);

    BnbOptions opt;
    opt.jobs = 8;
    opt.max_nodes = 1 + static_cast<std::size_t>(rng.uniform(0.0, 10.0));
    rrp::common::FakeClock clock;
    clock.set_auto_advance(1.0);
    opt.deadline =
        rrp::common::Deadline::after(rng.uniform(2.0, 120.0), clock);

    const MipResult r = solve(inst.model, opt);
    switch (r.status) {
      case MipStatus::Optimal:
        ++optimal;
        EXPECT_NEAR(r.objective, exact.objective, 1e-5) << "trial " << trial;
        break;
      case MipStatus::TimeLimit:
      case MipStatus::NodeLimit:
        ++limit_path;
        ASSERT_FALSE(r.x.empty()) << "trial " << trial;
        inst.expect_feasible(r.x);
        EXPECT_GE(r.objective, exact.objective - 1e-5);
        EXPECT_LE(r.best_bound, r.objective + 1e-6);
        EXPECT_LE(r.best_bound, exact.objective + 1e-6);
        break;
      case MipStatus::NoIncumbent:
        ++limit_path;
        EXPECT_TRUE(r.x.empty());
        EXPECT_LE(r.best_bound, exact.objective + 1e-6);
        break;
      default:
        FAIL() << "feasible model reported " << to_string(r.status)
               << " in trial " << trial;
    }
  }
  // The randomisation must hit both outcomes, not degenerate into one.
  EXPECT_GT(limit_path, 8);
  EXPECT_GT(optimal, 2);
}

TEST(ParallelBnbChaos, InjectedLpFailuresAreRecoveredInParallel) {
  // FaultInjector-armed LP failures under 8 workers: the recovery
  // ladder retries on the worker that hit the fault; the solve must
  // still land on the exact optimum.  Run under TSan in CI.
  rrp::Rng rng(99);
  std::size_t recovered_total = 0;
  for (int trial = 0; trial < 15; ++trial) {
    LotSizing inst(rng);
    const MipResult exact = solve(inst.model, exact_options());
    ASSERT_EQ(exact.status, MipStatus::Optimal);

    rrp::testing::FaultInjector inj;
    // Each recovery rung's LP solve consumes one armed failure at entry,
    // so <= 3 armed faults are always absorbed by the 4-attempt ladder
    // even when they all land on the same node.
    inj.arm_lp_failures(1 + static_cast<std::size_t>(rng.uniform(0.0, 3.0)));
    BnbOptions opt = exact_options();
    opt.jobs = 8;
    opt.lp.fault_injector = &inj;

    const MipResult r = solve(inst.model, opt);
    ASSERT_EQ(r.status, MipStatus::Optimal) << "trial " << trial;
    EXPECT_NEAR(r.objective, exact.objective, 1e-6) << "trial " << trial;
    inst.expect_feasible(r.x);
    recovered_total += r.lp_failures_recovered;
  }
  EXPECT_GT(recovered_total, 0u);
}

TEST(ParallelBnbChaos, FaultsAndDeadlinesTogetherStayWellFormed) {
  // The full storm: armed LP failures *and* an expiring fake-clock
  // deadline, 8 workers.  Whatever bites first, the result is either a
  // feasible incumbent with a sound bound or an honest empty-handed
  // status — never a crash, hang, or malformed point.
  rrp::Rng rng(555);
  for (int trial = 0; trial < 15; ++trial) {
    LotSizing inst(rng, 4, 5);
    rrp::testing::FaultInjector inj;
    inj.arm_lp_failures(static_cast<std::size_t>(rng.uniform(0.0, 4.0)));
    rrp::common::FakeClock clock;
    clock.set_auto_advance(1.0);

    BnbOptions opt;
    opt.jobs = 8;
    opt.lp.fault_injector = &inj;
    opt.deadline =
        rrp::common::Deadline::after(rng.uniform(2.0, 60.0), clock);

    const MipResult r = solve(inst.model, opt);
    if (!r.x.empty()) {
      inst.expect_feasible(r.x);
      EXPECT_LE(r.best_bound, r.objective + 1e-6) << "trial " << trial;
    } else {
      EXPECT_TRUE(r.status == MipStatus::NoIncumbent ||
                  r.status == MipStatus::Infeasible)
          << to_string(r.status) << " in trial " << trial;
    }
  }
}

}  // namespace
