#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "market/trace_generator.hpp"

namespace {

using namespace rrp::market;
namespace stats = rrp::stats;

TEST(SpotTrace, ConstructionValidatesInput) {
  EXPECT_THROW(SpotTrace(VmClass::C1Medium, {}), rrp::ContractViolation);
  std::vector<rrp::ts::Tick> unsorted = {{2.0, 0.1}, {1.0, 0.1}};
  EXPECT_THROW(SpotTrace(VmClass::C1Medium, unsorted),
               rrp::ContractViolation);
  std::vector<rrp::ts::Tick> nonpositive = {{0.0, 0.0}};
  EXPECT_THROW(SpotTrace(VmClass::C1Medium, nonpositive),
               rrp::ContractViolation);
}

TEST(SpotTrace, AccessorsAndHourlyConversion) {
  std::vector<rrp::ts::Tick> ticks = {{0.0, 0.05}, {2.5, 0.07}};
  const SpotTrace trace(VmClass::M1Large, ticks);
  EXPECT_EQ(trace.vm_class(), VmClass::M1Large);
  EXPECT_DOUBLE_EQ(trace.duration_hours(), 2.5);
  const auto h = trace.hourly(0, 5);
  ASSERT_EQ(h.size(), 5u);
  EXPECT_DOUBLE_EQ(h[2], 0.05);
  EXPECT_DOUBLE_EQ(h[3], 0.07);
}

/// Writes `content` to a temp CSV, expects load_csv to throw an
/// InvalidArgument whose message contains `needle` (row/field naming).
void expect_load_fails(const std::string& content,
                       const std::string& needle) {
  const std::string path = ::testing::TempDir() + "rrp_trace_malformed.csv";
  {
    std::ofstream out(path);
    out << content;
  }
  try {
    (void)SpotTrace::load_csv(path, VmClass::C1Medium);
    std::remove(path.c_str());
    FAIL() << "expected InvalidArgument mentioning \"" << needle << "\"";
  } catch (const rrp::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
  std::remove(path.c_str());
}

TEST(SpotTraceCsvHardening, RejectsShortRows) {
  expect_load_fails("time_hours,price\n1.0\n", "row 2");
}

TEST(SpotTraceCsvHardening, RejectsNonNumericFields) {
  // Row 1 with a non-numeric first field reads as a header (tolerated);
  // anywhere else it is an error naming the field.
  expect_load_fails("0.0,0.05\nabc,0.06\n", "time_hours is not numeric");
  expect_load_fails("1.0,cheap\n", "price is not numeric");
  expect_load_fails("0.0,0.05\n1.0x,0.06\n", "trailing characters");
}

TEST(SpotTraceCsvHardening, RejectsNanAndInfinitePrices) {
  expect_load_fails("0.0,nan\n", "price is NaN");
  expect_load_fails("0.0,inf\n", "price is not finite");
  expect_load_fails("nan,0.05\n", "time_hours is NaN");
}

TEST(SpotTraceCsvHardening, RejectsNonPositivePricesAndNegativeTimes) {
  expect_load_fails("0.0,0.0\n", "price must be positive");
  expect_load_fails("0.0,-0.1\n", "price must be positive");
  expect_load_fails("-1.0,0.05\n", "time_hours must be non-negative");
}

TEST(SpotTraceCsvHardening, RejectsUnsortedAndDuplicateTimestamps) {
  expect_load_fails("0.0,0.05\n2.0,0.06\n1.0,0.07\n", "precedes");
  expect_load_fails("0.0,0.05\n1.0,0.06\n1.0,0.07\n", "duplicates");
}

TEST(SpotTraceCsvHardening, RejectsUnknownEventLabels) {
  expect_load_fails("0.0,0.05,evicted\n", "event must be empty");
}

TEST(SpotTraceCsvHardening, RejectsEmptyFiles) {
  expect_load_fails("", "no data rows");
  expect_load_fails("time_hours,price\n", "no data rows");
}

TEST(SpotTraceCsvHardening, ErrorsNameRowAsInFile) {
  // Row numbering is 1-based and counts the header, matching what the
  // user sees in an editor.
  expect_load_fails("time_hours,price\n0.0,0.05\n1.0,bad\n", "row 3");
}

TEST(SpotTraceCsvHardening, AcceptsHeaderlessAndEventColumns) {
  const std::string path = ::testing::TempDir() + "rrp_trace_ok.csv";
  {
    std::ofstream out(path);
    out << "0.0,0.05\n1.5,0.06,revoke\n2.5,0.07,storm\n";
  }
  const SpotTrace t = SpotTrace::load_csv(path, VmClass::C1Medium);
  std::remove(path.c_str());
  ASSERT_EQ(t.ticks().size(), 3u);
  ASSERT_EQ(t.revocations().size(), 2u);
  EXPECT_FALSE(t.revocations()[0].storm);
  EXPECT_TRUE(t.revocations()[1].storm);
}

TEST(SpotTrace, CsvRoundTrip) {
  std::vector<rrp::ts::Tick> ticks = {{0.0, 0.051}, {1.25, 0.062},
                                      {7.5, 0.049}};
  const SpotTrace trace(VmClass::C1Medium, ticks);
  const std::string path = ::testing::TempDir() + "rrp_trace_test.csv";
  trace.save_csv(path);
  const SpotTrace loaded = SpotTrace::load_csv(path, VmClass::C1Medium);
  ASSERT_EQ(loaded.ticks().size(), 3u);
  EXPECT_NEAR(loaded.ticks()[1].time_hours, 1.25, 1e-9);
  EXPECT_NEAR(loaded.ticks()[1].value, 0.062, 1e-9);
  std::remove(path.c_str());
}

class TraceGeneratorPerClass : public ::testing::TestWithParam<VmClass> {};

TEST_P(TraceGeneratorPerClass, CalibratedToPaperStatistics) {
  const VmClass vm = GetParam();
  const SpotTrace trace = generate_trace(vm, /*seed=*/2012);
  const auto prices = trace.prices();
  const VmClassInfo& ci = info(vm);

  // (1) Level: mean spot price well below on-demand, near the target.
  const double mean_price = stats::mean(prices);
  EXPECT_NEAR(mean_price, ci.on_demand_hourly * ci.spot_mean_ratio,
              0.15 * ci.on_demand_hourly * ci.spot_mean_ratio);
  EXPECT_LT(mean_price, 0.6 * ci.on_demand_hourly);

  // (2) Outliers: present but rare (< 3% of updates, Figure 3).
  const auto box = stats::box_summary(prices);
  EXPECT_GT(box.n_outliers, 0u);
  EXPECT_LT(box.outlier_fraction, 0.03);

  // (3) Enough history: the paper's window is ~507 days of updates.
  EXPECT_GT(trace.duration_hours(), 500.0 * 24.0 * 0.95);
  EXPECT_GT(prices.size(), 2000u);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, TraceGeneratorPerClass,
                         ::testing::Values(VmClass::C1Medium,
                                           VmClass::M1Large,
                                           VmClass::M1Xlarge,
                                           VmClass::C1Xlarge));

TEST(TraceGenerator, DeterministicForSeed) {
  const SpotTrace a = generate_trace(VmClass::C1Medium, 7);
  const SpotTrace b = generate_trace(VmClass::C1Medium, 7);
  ASSERT_EQ(a.ticks().size(), b.ticks().size());
  for (std::size_t i = 0; i < a.ticks().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ticks()[i].time_hours, b.ticks()[i].time_hours);
    EXPECT_DOUBLE_EQ(a.ticks()[i].value, b.ticks()[i].value);
  }
}

TEST(TraceGenerator, DifferentSeedsDiffer) {
  const SpotTrace a = generate_trace(VmClass::C1Medium, 1);
  const SpotTrace b = generate_trace(VmClass::C1Medium, 2);
  // Same structure, different realisation.
  EXPECT_NE(a.ticks().size(), b.ticks().size());
}

TEST(TraceGenerator, UpdateFrequencyVariesAcrossDays) {
  const SpotTrace trace = generate_trace(VmClass::C1Medium, 99);
  const auto counts = trace.daily_update_counts();
  ASSERT_GT(counts.size(), 400u);
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  // Figure 4 shows clear day-to-day variation, not a constant rate.
  EXPECT_GT(*mx, *mn + 5);
  const double avg = static_cast<double>(std::accumulate(
                         counts.begin(), counts.end(), std::size_t{0})) /
                     static_cast<double>(counts.size());
  EXPECT_GT(avg, 4.0);
  EXPECT_LT(avg, 30.0);
}

TEST(TraceGenerator, PricesAreQuantised) {
  const SpotTrace trace = generate_trace(VmClass::C1Medium, 5);
  for (const auto& t : trace.ticks()) {
    const double scaled = t.value / 0.001;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-6);
  }
}

TEST(TraceGenerator, SpikesCanExceedOnDemand) {
  // Out-of-bid risk requires occasional prices above typical bids; with
  // the default config some spikes should reach beyond on-demand * 0.9.
  const SpotTrace trace = generate_trace(VmClass::M1Xlarge, 11);
  const double od = info(VmClass::M1Xlarge).on_demand_hourly;
  int high = 0;
  for (double p : trace.prices())
    if (p > 0.9 * od) ++high;
  EXPECT_GT(high, 0);
}

TEST(TraceGenerator, ConfigValidation) {
  rrp::Rng rng(1);
  TraceGeneratorConfig cfg = default_config(VmClass::C1Medium);
  cfg.days = 0.0;
  EXPECT_THROW(generate_trace(VmClass::C1Medium, cfg, rng),
               rrp::ContractViolation);
  cfg = default_config(VmClass::C1Medium);
  cfg.spike_min_factor = 0.5;
  EXPECT_THROW(generate_trace(VmClass::C1Medium, cfg, rng),
               rrp::ContractViolation);
}

TEST(TraceGenerator, HourlySeriesHasMildDailyCycle) {
  const SpotTrace trace = generate_trace(VmClass::C1Medium, 31);
  const auto hourly = trace.hourly(0, 24 * 400);
  // Average by phase: the daily sinusoid should produce a detectable
  // spread between the peak and trough phases.
  std::vector<double> phase_mean(24, 0.0);
  for (std::size_t t = 0; t < hourly.size(); ++t)
    phase_mean[t % 24] += hourly[t];
  for (auto& v : phase_mean) v /= static_cast<double>(hourly.size()) / 24.0;
  const auto [mn, mx] =
      std::minmax_element(phase_mean.begin(), phase_mean.end());
  EXPECT_GT(*mx - *mn, 0.0);
  EXPECT_LT((*mx - *mn) / stats::mean(hourly), 0.2);  // mild, not dominant
}

}  // namespace
