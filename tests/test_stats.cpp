#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

namespace stats = rrp::stats;

TEST(Stats, MeanAndVariance) {
  std::vector<double> x = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(stats::mean(x), 5.0);
  EXPECT_NEAR(stats::variance(x), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats::stddev(x), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, MeanRequiresNonEmpty) {
  std::vector<double> empty;
  EXPECT_THROW(stats::mean(empty), rrp::ContractViolation);
}

TEST(Stats, VarianceRequiresTwoPoints) {
  std::vector<double> one = {1.0};
  EXPECT_THROW(stats::variance(one), rrp::ContractViolation);
}

TEST(Stats, QuantileMatchesRType7) {
  // Reference values computed with R: quantile(c(1,2,3,4), type=7).
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::quantile(x, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(stats::quantile(x, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(stats::quantile(x, 0.75), 3.25);
  EXPECT_DOUBLE_EQ(stats::quantile(x, 1.0), 4.0);
}

TEST(Stats, QuantileUnsortedInput) {
  std::vector<double> x = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(stats::median(x), 5.0);
}

TEST(Stats, SkewnessSignsAreCorrect) {
  std::vector<double> right = {1, 1, 1, 2, 2, 3, 8, 20};
  std::vector<double> left = {-20, -8, -3, -2, -2, -1, -1, -1};
  EXPECT_GT(stats::skewness(right), 0.0);
  EXPECT_LT(stats::skewness(left), 0.0);
}

TEST(Stats, KurtosisOfNormalNearZero) {
  rrp::Rng rng(21);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(stats::excess_kurtosis(xs), 0.0, 0.1);
}

TEST(Stats, BoxSummaryBasics) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8, 9, 100};
  const auto b = stats::box_summary(x);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.max, 100.0);
  EXPECT_DOUBLE_EQ(b.q1, 3.25);
  EXPECT_DOUBLE_EQ(b.q3, 7.75);
  EXPECT_NEAR(b.iqr, 4.5, 1e-12);
  EXPECT_EQ(b.n_outliers, 1u);  // the 100
  EXPECT_NEAR(b.outlier_fraction, 0.1, 1e-12);
}

TEST(Stats, BoxSummaryNoOutliersInTightData) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  EXPECT_EQ(stats::box_summary(x).n_outliers, 0u);
}

TEST(Stats, TrimOutliersRemovesExactlyFlaggedPoints) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8, 9, 100, -50};
  const auto b = stats::box_summary(x);
  const auto trimmed = stats::trim_outliers(x);
  EXPECT_EQ(trimmed.size(), x.size() - b.n_outliers);
  for (double v : trimmed) {
    EXPECT_GE(v, b.lower_fence);
    EXPECT_LE(v, b.upper_fence);
  }
}

TEST(Stats, HistogramCountsAndClamping) {
  std::vector<double> x = {0.1, 0.2, 0.5, 0.9, -1.0, 2.0};
  const auto h = stats::histogram(x, 0.0, 1.0, 4);
  EXPECT_EQ(h.total(), x.size());
  EXPECT_EQ(h.counts[0], 2u + 1u);  // 0.1, 0.2 and clamped -1.0
  EXPECT_EQ(h.counts[3], 1u + 1u);  // 0.9 and clamped 2.0
  EXPECT_NEAR(h.bin_width(), 0.25, 1e-12);
  EXPECT_NEAR(h.bin_center(0), 0.125, 1e-12);
}

TEST(Stats, HistogramAutoRangeDegenerate) {
  std::vector<double> x = {3.0, 3.0, 3.0};
  const auto h = stats::histogram(x, 5);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Stats, KdeIntegratesToRoughlyOne) {
  rrp::Rng rng(22);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.normal(0.0, 1.0);
  std::vector<double> grid;
  for (double g = -5.0; g <= 5.0; g += 0.05) grid.push_back(g);
  const auto dens = stats::kde(xs, grid);
  double integral = 0.0;
  for (double d : dens) integral += d * 0.05;
  EXPECT_NEAR(integral, 1.0, 0.03);
}

TEST(Stats, KdePeaksNearMode) {
  rrp::Rng rng(23);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.normal(2.0, 0.5);
  std::vector<double> grid = {0.0, 2.0, 4.0};
  const auto dens = stats::kde(xs, grid);
  EXPECT_GT(dens[1], dens[0]);
  EXPECT_GT(dens[1], dens[2]);
}

TEST(Stats, PearsonCorrelationExtremes) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(stats::pearson_correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(stats::pearson_correlation(x, z), -1.0, 1e-12);
}

TEST(Stats, MseBasics) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {1.0, 3.0, 5.0};
  EXPECT_NEAR(stats::mse(a, b), (0.0 + 1.0 + 4.0) / 3.0, 1e-12);
}

TEST(Stats, MseRequiresEqualSizes) {
  std::vector<double> a = {1.0};
  std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(stats::mse(a, b), rrp::ContractViolation);
}

}  // namespace
