// Revocation-storm chaos suite (ISSUE 7): arm revocations and storms on
// every policy variant — injector-scheduled, model-drawn, and both at
// once on top of solver faults — and prove the simulation always
// completes with balanced inventory, finite costs, and revocation
// telemetry that matches the events exactly.  Runs under the CI chaos
// job (`ctest -R "Chaos|...|Revocation|Storm"`); the nightly long-chaos
// workflow widens the seed sweep via RRP_LONG_CHAOS_SEEDS.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "core/demand.hpp"
#include "core/policies.hpp"
#include "core/rolling_horizon.hpp"
#include "market/revocation.hpp"
#include "market/trace_generator.hpp"

namespace {

using namespace rrp::core;
using rrp::market::RevocationConfig;
using rrp::market::RevocationKind;
using rrp::market::VmClass;
using rrp::testing::FaultInjector;

constexpr std::size_t kHorizon = 24;

std::size_t sweep_seeds() {
  // Default small for developer runs; the nightly long-chaos workflow
  // exports RRP_LONG_CHAOS_SEEDS=32.
  if (const char* env = std::getenv("RRP_LONG_CHAOS_SEEDS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 4;
}

SimulationInputs chaos_inputs(std::uint64_t seed = 11) {
  const auto trace = rrp::market::generate_trace(VmClass::C1Medium, seed);
  const auto hourly = trace.hourly();
  const std::size_t history_hours = 240;  // short fit, fast chaos runs
  SimulationInputs in;
  in.vm = VmClass::C1Medium;
  in.history.assign(hourly.begin(),
                    hourly.begin() + static_cast<long>(history_hours));
  in.actual_spot.assign(
      hourly.begin() + static_cast<long>(history_hours),
      hourly.begin() + static_cast<long>(history_hours + kHorizon));
  rrp::Rng rng(seed ^ 0xabcdefULL);
  in.demand = generate_demand(kHorizon, DemandConfig{}, rng);
  in.intra_slot_max = trace.hourly_max(
      static_cast<long>(history_hours),
      static_cast<long>(history_hours + kHorizon));
  return in;
}

/// SARIMA-free policies: the sweep multiplies seeds x policies, so keep
/// each run in the milliseconds.
std::vector<PolicyConfig> sweep_policies() {
  return interruption_policies();
}

void expect_inventory_balanced(const SimulationInputs& in,
                               const SimulationResult& r) {
  ASSERT_EQ(r.slots.size(), in.horizon());
  double store = in.initial_storage;
  double compute = 0.0;
  for (std::size_t t = 0; t < r.slots.size(); ++t) {
    const SlotRecord& rec = r.slots[t];
    EXPECT_GE(rec.alpha, 0.0) << "slot " << t;
    store += rec.alpha - in.demand[t];
    EXPECT_GT(store, -1e-6) << "unserved demand at slot " << t;
    store = std::max(store, 0.0);
    EXPECT_NEAR(rec.inventory, store, 1e-9) << "slot " << t;
    if (rec.rented) {
      EXPECT_GT(rec.price_paid, 0.0) << "slot " << t;
      compute += rec.price_paid;
    } else {
      EXPECT_EQ(rec.price_paid, 0.0) << "slot " << t;
    }
  }
  EXPECT_NEAR(r.cost.compute, compute, 1e-9);
  EXPECT_TRUE(std::isfinite(r.total_cost()));
  EXPECT_FALSE(std::isnan(r.cost.interruption));
}

void expect_revocation_telemetry_consistent(const SimulationResult& r) {
  EXPECT_EQ(r.revocations.size(),
            r.revoked_bid_cross + r.revoked_hazard + r.revoked_storm);
  EXPECT_EQ(r.revocations.size(),
            r.recovered_spot + r.recovered_migration + r.recovered_on_demand);
  EXPECT_EQ(r.recovered_migration, r.migrations.size());
  double lost = 0.0;
  for (const RevocationEvent& ev : r.revocations) {
    ASSERT_LT(ev.slot, r.slots.size());
    EXPECT_TRUE(r.slots[ev.slot].revoked) << "slot " << ev.slot;
    EXPECT_TRUE(r.slots[ev.slot].rented) << "slot " << ev.slot;
    EXPECT_TRUE(r.slots[ev.slot].spot) << "slot " << ev.slot;
    EXPECT_GT(ev.fraction, 0.0);
    EXPECT_LT(ev.fraction, 1.0);
    EXPECT_GE(ev.lost_work, 0.0);
    EXPECT_LE(ev.lost_work, ev.fraction + 1e-12);
    lost += ev.lost_work;
  }
  EXPECT_NEAR(r.work_lost, lost, 1e-9);
  EXPECT_GE(r.cost.interruption, 0.0);
  EXPECT_GE(r.checkpoint_overhead_cost, 0.0);
  // Slots never revoke without a held spot instance.
  std::size_t revoked_slots = 0;
  for (const SlotRecord& rec : r.slots)
    if (rec.revoked) ++revoked_slots;
  EXPECT_EQ(revoked_slots, r.revocations.size());
}

TEST(RevocationStormChaos, InjectorStormSchedulesNeverBreakInvariants) {
  const std::size_t seeds = sweep_seeds();
  for (std::size_t seed = 0; seed < seeds; ++seed) {
    const SimulationInputs in = chaos_inputs(100 + seed);
    FaultInjector inj(seed);
    // Hostile far beyond any plausible market: half of all slots armed,
    // a third of those correlated storms.
    inj.schedule_revocations(kHorizon, 0.5, 0.3);
    for (const PolicyConfig& policy : sweep_policies()) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " " + policy.name);
      const SimulationResult r = simulate_policy(in, policy, &inj);
      expect_inventory_balanced(in, r);
      expect_revocation_telemetry_consistent(r);
    }
  }
}

TEST(RevocationStormChaos, ModelStormRegimesNeverBreakInvariants) {
  const std::size_t seeds = sweep_seeds();
  for (std::size_t seed = 0; seed < seeds; ++seed) {
    SimulationInputs in = chaos_inputs(200 + seed);
    in.revocation = RevocationConfig::storm();
    in.revocation.hazard_per_slot = 0.3;  // crank well past the regime
    in.revocation.storm_rate = 0.3;
    in.revocation.seed = seed;
    for (const PolicyConfig& policy : sweep_policies()) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " " + policy.name);
      const SimulationResult r = simulate_policy(in, policy);
      expect_inventory_balanced(in, r);
      expect_revocation_telemetry_consistent(r);
    }
  }
}

TEST(RevocationStormChaos, SolverFaultsPlusStormsCompose) {
  SimulationInputs in = chaos_inputs(31);
  in.revocation = RevocationConfig::storm();
  in.revocation.seed = 5;
  FaultInjector inj(9);
  for (std::size_t t = 0; t < kHorizon; t += 2) inj.inject_solver_timeout(t);
  inj.schedule_revocations(kHorizon, 0.4, 0.5);
  for (const PolicyConfig& policy : sweep_policies()) {
    SCOPED_TRACE(policy.name);
    const SimulationResult r = simulate_policy(in, policy, &inj);
    expect_inventory_balanced(in, r);
    expect_revocation_telemetry_consistent(r);
    EXPECT_EQ(r.fallbacks.size(), r.fallback_reused_tail +
                                      r.fallback_heuristic +
                                      r.fallback_on_demand);
  }
}

// Regression (ISSUE 7 satellite): a solver timeout and a revocation at
// the SAME slot must emit exactly one FallbackEvent for the failed
// re-plan and exactly one RevocationEvent for the interruption — the
// coinciding faults never double-count either stream.
TEST(RevocationChaos, CoincidentTimeoutAndRevocationCountOnce) {
  const SimulationInputs in = chaos_inputs(42);
  // Oracle bids always win, so slot 0 certainly holds a spot instance
  // (zero initial storage forces chi[0] = 1) and the armed revocation
  // certainly fires.
  const PolicyConfig policy = oracle_policy();

  FaultInjector inj(3);
  inj.inject_solver_timeout(0);
  inj.inject_revocation(0, 0.6);

  const SimulationResult r = simulate_policy(in, policy, &inj);
  expect_inventory_balanced(in, r);
  expect_revocation_telemetry_consistent(r);

  std::size_t fallbacks_at_0 = 0;
  for (const FallbackEvent& ev : r.fallbacks)
    if (ev.slot == 0) ++fallbacks_at_0;
  EXPECT_EQ(fallbacks_at_0, 1u);
  EXPECT_EQ(r.replan_timeouts, 1u);

  ASSERT_EQ(r.revocations.size(), 1u);
  EXPECT_EQ(r.revocations[0].slot, 0u);
  EXPECT_EQ(r.revocations[0].kind, RevocationKind::Hazard);
  EXPECT_DOUBLE_EQ(r.revocations[0].fraction, 0.6);
}

// Same seed => identical revocation timeline, run after run.
TEST(RevocationChaos, ModelTimelineDeterministicAcrossRuns) {
  SimulationInputs in = chaos_inputs(77);
  in.revocation = RevocationConfig::storm();
  in.revocation.hazard_per_slot = 0.8;  // enough held-slot hits to compare
  in.revocation.storm_rate = 0.3;
  in.revocation.seed = 13;
  // Oracle always wins its auctions, so spot instances are certainly
  // held (an expected-mean bid can lose every auction in a hot window,
  // leaving nothing to revoke).
  const PolicyConfig policy = oracle_policy();
  const SimulationResult a = simulate_policy(in, policy);
  const SimulationResult b = simulate_policy(in, policy);
  ASSERT_EQ(a.revocations.size(), b.revocations.size());
  EXPECT_GT(a.revocations.size(), 0u);
  for (std::size_t i = 0; i < a.revocations.size(); ++i) {
    EXPECT_EQ(a.revocations[i].slot, b.revocations[i].slot);
    EXPECT_EQ(a.revocations[i].kind, b.revocations[i].kind);
    EXPECT_DOUBLE_EQ(a.revocations[i].fraction, b.revocations[i].fraction);
    EXPECT_EQ(a.revocations[i].recovery, b.revocations[i].recovery);
  }
  EXPECT_DOUBLE_EQ(a.total_cost(), b.total_cost());
}

// Same injector schedule => identical revocation timeline regardless of
// the branch & bound worker count (the --jobs knob must not leak into
// fault consumption).
TEST(RevocationChaos, InjectorTimelineIdenticalAcrossJobCounts) {
  const SimulationInputs in = chaos_inputs(55);
  FaultInjector inj(21);
  inj.schedule_revocations(kHorizon, 0.5, 0.4);

  std::vector<SimulationResult> results;
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    PolicyConfig policy = det_exp_mean_policy();
    policy.backend = PlannerBackend::Milp;
    policy.solver.jobs = jobs;
    results.push_back(simulate_policy(in, policy, &inj));
  }
  for (std::size_t j = 1; j < results.size(); ++j) {
    ASSERT_EQ(results[0].revocations.size(), results[j].revocations.size());
    for (std::size_t i = 0; i < results[0].revocations.size(); ++i) {
      EXPECT_EQ(results[0].revocations[i].slot,
                results[j].revocations[i].slot);
      EXPECT_EQ(results[0].revocations[i].kind,
                results[j].revocations[i].kind);
      EXPECT_DOUBLE_EQ(results[0].revocations[i].fraction,
                       results[j].revocations[i].fraction);
    }
    EXPECT_NEAR(results[0].total_cost(), results[j].total_cost(), 1e-9);
  }
  EXPECT_GT(results[0].revocations.size(), 0u);
}

// The ladder's rungs respond to the config: hazards re-acquire spot
// when allowed, storms migrate, and with both rungs off everything
// lands on the on-demand backstop.
TEST(RevocationChaos, RecoveryLadderRespectsConfig) {
  SimulationInputs in = chaos_inputs(88);
  in.revocation = RevocationConfig::bid_crossing();
  in.revocation.hazard_per_slot = 1.0;  // revoke every held slot
  in.revocation.seed = 2;

  const PolicyConfig policy = det_exp_mean_policy();

  const SimulationResult spot = simulate_policy(in, policy);
  EXPECT_GT(spot.revocations.size(), 0u);
  EXPECT_EQ(spot.recovered_migration + spot.recovered_on_demand,
            spot.revoked_bid_cross + spot.revoked_storm)
      << "hazards must re-acquire spot while allowed";

  in.revocation.allow_spot_reacquire = false;
  const SimulationResult migrate = simulate_policy(in, policy);
  EXPECT_EQ(migrate.recovered_spot, 0u);
  EXPECT_EQ(migrate.migrations.size(), migrate.recovered_migration);
  EXPECT_GT(migrate.recovered_migration, 0u);

  in.revocation.allow_migration = false;
  const SimulationResult backstop = simulate_policy(in, policy);
  EXPECT_EQ(backstop.recovered_spot, 0u);
  EXPECT_EQ(backstop.recovered_migration, 0u);
  EXPECT_EQ(backstop.recovered_on_demand, backstop.revocations.size());
  for (const auto& r : {spot, migrate, backstop}) {
    expect_inventory_balanced(in, r);
    expect_revocation_telemetry_consistent(r);
  }
}

// With the layer disabled and no injector, results are bit-identical to
// the pre-revocation simulator: zero events, zero interruption cost.
TEST(RevocationChaos, DisabledLayerIsInert) {
  const SimulationInputs in = chaos_inputs(66);
  for (const PolicyConfig& policy : sweep_policies()) {
    SCOPED_TRACE(policy.name);
    const SimulationResult r = simulate_policy(in, policy);
    EXPECT_TRUE(r.revocations.empty());
    EXPECT_TRUE(r.migrations.empty());
    EXPECT_EQ(r.work_lost, 0.0);
    EXPECT_EQ(r.cost.interruption, 0.0);
    EXPECT_EQ(r.checkpoint_overhead_cost, 0.0);
  }
}

}  // namespace
