#include "milp/cuts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/drrp.hpp"
#include "core/demand.hpp"
#include "common/rng.hpp"

namespace {

using namespace rrp;
using milp::Cut;
using milp::CutPool;
using milp::LotSizingCutGenerator;
using milp::LotSlot;

TEST(Cut, ViolationMeasuresBothBounds) {
  Cut cut;
  cut.entries = {{0, 1.0}, {1, 2.0}};
  cut.lo = 1.0;
  cut.hi = 5.0;
  // activity = 1*1 + 2*3 = 7 -> violates hi by 2.
  EXPECT_NEAR(cut.violation({1.0, 3.0}), 2.0, 1e-12);
  // activity = 0 -> violates lo by 1.
  EXPECT_NEAR(cut.violation({0.0, 0.0}), 1.0, 1e-12);
  // activity = 3 -> satisfied.
  EXPECT_LE(cut.violation({1.0, 1.0}), 0.0);
}

// A 3-period chain with unit demands.  The hand-built fractional point
// produces alpha_t = D_t with tiny chi_t (the classic weak-relaxation
// optimum), which the l = 1 cut chi_1 >= 1 separates.
TEST(LotSizingCuts, SeparatesFractionalSetupPoint) {
  LotSizingCutGenerator gen;
  // Variable layout: alpha at 0..2, chi at 3..5.
  gen.add_chain({{0, 3, 1.0}, {1, 4, 1.0}, {2, 5, 1.0}});
  ASSERT_EQ(gen.num_chains(), 1u);

  // alpha meets demand exactly, chi is at the forcing-bound fraction.
  const std::vector<double> x = {1.0, 1.0, 1.0, 1.0 / 3.0, 0.5, 1.0};
  const auto cuts = gen.separate(x, 1e-6);
  ASSERT_FALSE(cuts.empty());
  for (const Cut& cut : cuts) {
    EXPECT_GT(cut.violation(x), 1e-6);
  }
}

// Every returned cut must be satisfied by every integer-feasible
// schedule.  Enumerate all chi subsets; for each feasible subset build
// the canonical schedule (produce at each open period everything needed
// until the next open period) and check the cuts hold.
TEST(LotSizingCuts, CutsAreValidForAllIntegerSchedules) {
  const std::vector<double> demand = {2.0, 0.0, 3.0, 1.0};
  const double initial_inventory = 1.0;
  const std::size_t T = demand.size();
  LotSizingCutGenerator gen;
  std::vector<LotSlot> slots;
  for (std::size_t t = 0; t < T; ++t)
    slots.push_back({t, T + t, demand[t]});
  gen.add_chain(slots, initial_inventory);

  // Fractional point: serve everything "just in time" with fractional
  // setups sized so the separation has something to find.
  std::vector<double> x(2 * T, 0.0);
  for (std::size_t t = 0; t < T; ++t) {
    x[t] = demand[t];
    x[T + t] = demand[t] > 0.0 ? 0.3 : 0.0;
  }
  const auto cuts = gen.separate(x, 1e-6);
  ASSERT_FALSE(cuts.empty());

  std::size_t feasible_schedules = 0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << T); ++mask) {
    std::vector<double> sol(2 * T, 0.0);
    double inventory = initial_inventory;
    bool feasible = true;
    // Walk periods; at each open period produce the demand of every
    // period up to (excluding) the next open one.
    for (std::size_t t = 0; t < T && feasible; ++t) {
      if (mask & (std::size_t{1} << t)) {
        sol[T + t] = 1.0;
        double lot = 0.0;
        for (std::size_t s = t; s < T; ++s) {
          if (s > t && (mask & (std::size_t{1} << s))) break;
          lot += demand[s];
        }
        lot = std::max(lot - inventory, 0.0);
        sol[t] = lot;
        inventory += lot;
      }
      inventory -= demand[t];
      if (inventory < -1e-9) feasible = false;
    }
    if (!feasible) continue;
    ++feasible_schedules;
    for (const Cut& cut : cuts) {
      EXPECT_LE(cut.violation(sol), 1e-9)
          << "cut violated by integer schedule mask=" << mask;
    }
  }
  EXPECT_GT(feasible_schedules, 0u);
}

TEST(LotSizingCuts, IntegerPointYieldsNoCuts) {
  LotSizingCutGenerator gen;
  gen.add_chain({{0, 2, 1.0}, {1, 3, 2.0}});
  // Produce everything in period 0: alpha = (3, 0), chi = (1, 0).
  const std::vector<double> x = {3.0, 0.0, 1.0, 0.0};
  EXPECT_TRUE(gen.separate(x, 1e-6).empty());
}

TEST(LotSizingCuts, InitialInventoryNetsDemand) {
  LotSizingCutGenerator gen;
  // Inventory fully covers the first demand; cuts must not force a
  // setup in period 0.
  gen.add_chain({{0, 2, 1.0}, {1, 3, 1.0}}, /*initial_inventory=*/1.0);
  // chi_0 = 0 but period 1 served fractionally.
  const std::vector<double> x = {0.0, 1.0, 0.0, 0.25};
  const auto cuts = gen.separate(x, 1e-6);
  // The valid schedule alpha=(0,1), chi=(0,1) must satisfy every cut.
  const std::vector<double> integer_sol = {0.0, 1.0, 0.0, 1.0};
  for (const Cut& cut : cuts) {
    EXPECT_LE(cut.violation(integer_sol), 1e-9);
  }
}

TEST(CutPool, DeduplicatesByCoefficientsAndBounds) {
  CutPool pool;
  Cut a;
  a.entries = {{0, 1.0}, {3, 2.5}};
  a.lo = 1.0;
  EXPECT_TRUE(pool.add(a));
  EXPECT_FALSE(pool.add(a));  // exact duplicate
  Cut permuted;
  permuted.entries = {{3, 2.5}, {0, 1.0}};  // same support, other order
  permuted.lo = 1.0;
  EXPECT_FALSE(pool.add(permuted));
  Cut other_bound = a;
  other_bound.lo = 2.0;
  EXPECT_TRUE(pool.add(other_bound));
  Cut other_coeff = a;
  other_coeff.entries[1].coeff = 2.75;
  EXPECT_TRUE(pool.add(other_coeff));
  EXPECT_EQ(pool.size(), 3u);
}

// End-to-end: root cuts shrink the aggregated DRRP tree without
// changing the optimum.
TEST(LotSizingCuts, RootCutsShrinkDrrpTree) {
  Rng rng(11);
  core::DrrpInstance inst;
  inst.demand = core::generate_demand(16, core::DemandConfig{}, rng);
  inst.compute_price.assign(16, 0.4);

  milp::BnbOptions off;
  off.root_cuts = false;
  const auto plan_off =
      core::solve_drrp(inst, off, core::DrrpFormulation::Aggregated);
  ASSERT_EQ(plan_off.status, milp::MipStatus::Optimal);
  EXPECT_EQ(plan_off.cuts_added, 0u);

  milp::BnbOptions on;  // root_cuts defaults to true
  const auto plan_on =
      core::solve_drrp(inst, on, core::DrrpFormulation::Aggregated);
  ASSERT_EQ(plan_on.status, milp::MipStatus::Optimal);
  EXPECT_GT(plan_on.cuts_added, 0u);
  EXPECT_GE(plan_on.root_gap_closed, 0.0);
  EXPECT_LE(plan_on.root_gap_closed, 1.0);
  EXPECT_LT(plan_on.nodes_explored, plan_off.nodes_explored);
  EXPECT_NEAR(plan_on.cost.total(), plan_off.cost.total(), 1e-6);
}

}  // namespace
