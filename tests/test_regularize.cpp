#include "timeseries/regularize.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using namespace rrp::ts;

TEST(Regularize, CarriesLastObservationForward) {
  std::vector<Tick> ticks = {{0.0, 1.0}, {2.5, 2.0}, {5.1, 3.0}};
  const auto h = hourly_locf(ticks, 0, 8);
  ASSERT_EQ(h.size(), 8u);
  // Hour 0: tick at 0.0 applies. Hours 1-2: still 1.0 (2.5 > 2).
  EXPECT_DOUBLE_EQ(h[0], 1.0);
  EXPECT_DOUBLE_EQ(h[1], 1.0);
  EXPECT_DOUBLE_EQ(h[2], 1.0);
  // Hour 3 onward: the 2.5 tick is the latest <= 3.
  EXPECT_DOUBLE_EQ(h[3], 2.0);
  EXPECT_DOUBLE_EQ(h[5], 2.0);
  // Hour 6 onward: the 5.1 tick applies.
  EXPECT_DOUBLE_EQ(h[6], 3.0);
  EXPECT_DOUBLE_EQ(h[7], 3.0);
}

TEST(Regularize, MultipleUpdatesWithinOneHourKeepLatest) {
  std::vector<Tick> ticks = {{0.0, 1.0}, {0.2, 5.0}, {0.9, 7.0}};
  const auto h = hourly_locf(ticks, 0, 2);
  EXPECT_DOUBLE_EQ(h[0], 1.0);  // at hour 0 only the t=0 tick has happened
  EXPECT_DOUBLE_EQ(h[1], 7.0);  // latest update during the previous hour
}

TEST(Regularize, TickExactlyOnBoundaryCounts) {
  std::vector<Tick> ticks = {{0.0, 1.0}, {3.0, 9.0}};
  const auto h = hourly_locf(ticks, 0, 4);
  EXPECT_DOUBLE_EQ(h[2], 1.0);
  EXPECT_DOUBLE_EQ(h[3], 9.0);
}

TEST(Regularize, RequiresSeedTick) {
  std::vector<Tick> ticks = {{5.0, 1.0}};
  EXPECT_THROW(hourly_locf(ticks, 0, 4), rrp::ContractViolation);
}

TEST(Regularize, RejectsUnsortedTicks) {
  std::vector<Tick> ticks = {{2.0, 1.0}, {1.0, 2.0}};
  EXPECT_THROW(hourly_locf(ticks, 2, 4), rrp::ContractViolation);
}

TEST(Regularize, WindowedExtraction) {
  std::vector<Tick> ticks = {{0.0, 1.0}, {30.0, 2.0}};
  const auto h = hourly_locf(ticks, 24, 48);
  ASSERT_EQ(h.size(), 24u);
  EXPECT_DOUBLE_EQ(h[0], 1.0);   // hour 24
  EXPECT_DOUBLE_EQ(h[6], 2.0);   // hour 30
  EXPECT_DOUBLE_EQ(h[23], 2.0);  // hour 47
}

TEST(Regularize, DailyUpdateCounts) {
  std::vector<Tick> ticks = {
      {1.0, 0.0}, {5.0, 0.0}, {23.9, 0.0},  // day 0: 3
      {24.0, 0.0},                          // day 1: 1
      {49.0, 0.0}, {50.0, 0.0}};            // day 2: 2
  const auto counts = daily_update_counts(ticks);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 2u);
}

TEST(Regularize, DailyUpdateCountsEmpty) {
  EXPECT_TRUE(daily_update_counts({}).empty());
}

}  // namespace
