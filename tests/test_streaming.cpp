#include "timeseries/streaming.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "timeseries/regularize.hpp"

namespace {

using namespace rrp::ts;

std::vector<double> batch(const std::vector<Tick>& ticks, long first_hour,
                          long last_hour) {
  return hourly_locf(sanitize_ticks(ticks), first_hour, last_hour);
}

/// A random irregular tick stream over [0, hours): seeded with a tick at
/// t = 0, then a Poisson-ish number of updates per hour at uniform
/// offsets, mimicking the paper's irregular update frequency (Fig. 4).
std::vector<Tick> random_stream(rrp::Rng& rng, std::size_t hours) {
  std::vector<Tick> ticks;
  ticks.push_back({0.0, rng.uniform(0.2, 0.6)});
  double t = 0.0;
  while (true) {
    t += rng.exponential(2.0);  // ~2 updates/hour on average
    if (t >= static_cast<double>(hours)) break;
    ticks.push_back({t, rng.uniform(0.05, 1.5)});
  }
  return ticks;
}

TEST(Streaming, MatchesBatchOnSimpleStream) {
  const std::vector<Tick> ticks = {
      {0.0, 1.0}, {2.5, 2.0}, {5.1, 3.0}, {5.6, 4.0}};
  OnlineRegularizer online(0);
  for (const Tick& t : ticks) EXPECT_TRUE(online.push(t));
  online.advance_to(8);
  EXPECT_EQ(online.series(), batch(ticks, 0, 8));
  EXPECT_EQ(online.next_hour(), 8);
  EXPECT_EQ(online.ticks_accepted(), 4u);
  EXPECT_EQ(online.ticks_rejected(), 0u);
}

TEST(Streaming, IncrementalAdvanceNeverRevisitsHours) {
  const std::vector<Tick> ticks = {{0.0, 1.0}, {1.2, 2.0}, {7.9, 3.0}};
  OnlineRegularizer online(0);
  for (const Tick& t : ticks) online.push(t);
  // Advance one hour at a time; each step extends, never rewrites.
  for (long h = 1; h <= 10; ++h) {
    online.advance_to(h);
    EXPECT_EQ(online.next_hour(), h);
    EXPECT_EQ(online.series(),
              batch(ticks, 0, h));
  }
  // advance_to below next_hour() is a no-op, not an error.
  online.advance_to(3);
  EXPECT_EQ(online.next_hour(), 10);
}

TEST(Streaming, InterleavedPushAndAdvanceMatchesBatch) {
  rrp::Rng rng(7);
  const std::vector<Tick> ticks = random_stream(rng, 48);
  OnlineRegularizer online(0);
  std::size_t consumed = 0;
  for (long h = 1; h <= 48; ++h) {
    // Deliver the ticks belonging to the next hour, then extend.
    while (consumed < ticks.size() &&
           ticks[consumed].time_hours <= static_cast<double>(h)) {
      online.push(ticks[consumed]);
      ++consumed;
    }
    online.advance_to(h);
  }
  while (consumed < ticks.size()) online.push(ticks[consumed++]);
  online.advance_to(48);
  EXPECT_EQ(online.series(), batch(ticks, 0, 48));
}

TEST(Streaming, PropertyThirtyRandomStreamsMatchBatch) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    rrp::Rng rng(seed * 0x9e3779b9ULL);
    const std::size_t hours = 24 + seed;  // vary the grid length too
    const std::vector<Tick> ticks = random_stream(rng, hours);

    OnlineRegularizer online(0);
    std::size_t consumed = 0;
    long emitted = 0;
    while (emitted < static_cast<long>(hours)) {
      // Random replay cadence: a burst of ticks, then a grid extension
      // of random size, exercising every interleaving of push/advance.
      const std::size_t burst =
          static_cast<std::size_t>(rng.uniform_int(0, 5));
      for (std::size_t i = 0; i < burst && consumed < ticks.size(); ++i)
        online.push(ticks[consumed++]);
      const long target =
          std::min<long>(static_cast<long>(hours),
                         emitted + rng.uniform_int(1, 6));
      // Only extend past the ticks already delivered (the LOCF carry
      // for an hour needs every tick up to that hour).
      while (consumed < ticks.size() &&
             ticks[consumed].time_hours <= static_cast<double>(target))
        online.push(ticks[consumed++]);
      online.advance_to(target);
      emitted = target;
    }
    EXPECT_EQ(online.series(), batch(ticks, 0, static_cast<long>(hours)))
        << "seed " << seed;
  }
}

TEST(Streaming, RejectsUnusableTicksLikeSanitize) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  OnlineRegularizer online(0);
  EXPECT_TRUE(online.push({0.0, 1.0}));
  EXPECT_FALSE(online.push({0.5, nan}));
  EXPECT_FALSE(online.push({1.5, inf}));
  EXPECT_FALSE(online.push({2.5, -0.2}));
  EXPECT_FALSE(online.push({3.5, 0.0}));
  EXPECT_TRUE(online.push({4.5, 2.0}));
  EXPECT_EQ(online.ticks_accepted(), 2u);
  EXPECT_EQ(online.ticks_rejected(), 4u);
  online.advance_to(6);
  const std::vector<Tick> all = {{0.0, 1.0}, {0.5, nan},  {1.5, inf},
                                 {2.5, -0.2}, {3.5, 0.0}, {4.5, 2.0}};
  EXPECT_EQ(online.series(), batch(all, 0, 6));
}

TEST(Streaming, RejectsTimeRegressions) {
  OnlineRegularizer online(0);
  online.push({0.0, 1.0});
  online.push({2.0, 2.0});
  EXPECT_THROW(online.push({1.0, 3.0}), rrp::ContractViolation);
}

TEST(Streaming, RequiresSeedTick) {
  OnlineRegularizer online(0);
  // The first usable tick must be at or before the start of the grid
  // (hourly_locf's seeding contract), and an unseeded grid cannot
  // advance.
  EXPECT_THROW(online.push({1.5, 1.0}), rrp::ContractViolation);
  OnlineRegularizer empty(0);
  EXPECT_THROW(empty.advance_to(1), rrp::ContractViolation);
}

TEST(Streaming, SanitizeDropsOnlyUnusable) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<Tick> ticks = {
      {0.0, 1.0}, {1.0, nan}, {2.0, 0.5}, {3.0, -1.0}};
  const auto clean = sanitize_ticks(ticks);
  ASSERT_EQ(clean.size(), 2u);
  EXPECT_DOUBLE_EQ(clean[0].value, 1.0);
  EXPECT_DOUBLE_EQ(clean[1].value, 0.5);
}

// Chaos: a FaultInjector-scheduled broken feed (gaps, NaN ticks, spike
// outliers, delayed re-deliveries) must regularise identically through
// the online path and the batch path — the online sanitiser is the
// batch sanitiser.
TEST(StreamingChaos, FaultInjectorFeedMatchesBatch) {
  rrp::testing::FaultInjector faults(2012);
  constexpr std::size_t kHours = 72;
  for (std::size_t slot = 3; slot < kHours; slot += 7)
    faults.inject_price_gap(slot);
  for (std::size_t slot = 5; slot < kHours; slot += 11)
    faults.inject_price_nan(slot);
  for (std::size_t slot = 9; slot < kHours; slot += 13)
    faults.inject_price_spike(slot);  // seeded outlier factor in [20, 100]
  for (std::size_t slot = 6; slot < kHours; slot += 17)
    faults.inject_price_delay(slot);

  rrp::Rng rng(99);
  std::vector<Tick> feed;
  feed.push_back({0.0, 0.4});
  double last_value = 0.4;
  for (std::size_t h = 1; h < kHours; ++h) {
    const double t = static_cast<double>(h) - 0.5;
    double value = 0.2 + 0.15 * rng.uniform();
    const auto fault = faults.price_fault(h);
    if (fault.has_value()) {
      using rrp::testing::PriceFaultKind;
      switch (fault->kind) {
        case PriceFaultKind::Gap:
          continue;  // no tick this hour: LOCF must carry
        case PriceFaultKind::Nan:
          value = std::numeric_limits<double>::quiet_NaN();
          break;
        case PriceFaultKind::Spike:
          value *= fault->spike_factor;  // outlier, but finite & positive
          break;
        case PriceFaultKind::Delayed:
          value = last_value;  // stale re-delivery, still usable
          break;
      }
    }
    feed.push_back({t, value});
    if (std::isfinite(value) && value > 0.0) last_value = value;
  }

  OnlineRegularizer online(0);
  for (const Tick& t : feed) online.push(t);
  online.advance_to(static_cast<long>(kHours));
  EXPECT_EQ(online.series(), batch(feed, 0, static_cast<long>(kHours)));
  EXPECT_GT(online.ticks_rejected(), 0u);  // the chaos actually bit
}

}  // namespace
