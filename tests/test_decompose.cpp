#include "timeseries/decompose.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using namespace rrp::ts;

std::vector<double> synthetic(std::size_t n, std::size_t period,
                              double trend_slope, double seasonal_amp,
                              double noise_sd, std::uint64_t seed) {
  rrp::Rng rng(seed);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double season =
        seasonal_amp *
        std::sin(2.0 * M_PI * static_cast<double>(t % period) /
                 static_cast<double>(period));
    x[t] = 10.0 + trend_slope * static_cast<double>(t) + season +
           rng.normal(0.0, noise_sd);
  }
  return x;
}

TEST(Decompose, SeasonalProfileSumsToZero) {
  const auto x = synthetic(240, 24, 0.01, 1.0, 0.1, 61);
  const auto d = decompose_additive(x, 24);
  double sum = 0.0;
  for (double v : d.seasonal_profile()) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(Decompose, RecoversLinearTrend) {
  const auto x = synthetic(240, 24, 0.05, 1.0, 0.0, 62);
  const auto d = decompose_additive(x, 24);
  // In the interior the centred MA of a linear trend is exact.
  for (std::size_t t = 30; t < 200; ++t) {
    ASSERT_FALSE(std::isnan(d.trend[t]));
    EXPECT_NEAR(d.trend[t], 10.0 + 0.05 * static_cast<double>(t), 0.02)
        << "t=" << t;
  }
}

TEST(Decompose, RecoversSeasonalShape) {
  const auto x = synthetic(480, 24, 0.0, 2.0, 0.05, 63);
  const auto d = decompose_additive(x, 24);
  const auto profile = d.seasonal_profile();
  for (std::size_t p = 0; p < 24; ++p) {
    const double expected =
        2.0 * std::sin(2.0 * M_PI * static_cast<double>(p) / 24.0);
    EXPECT_NEAR(profile[p], expected, 0.1) << "phase " << p;
  }
}

TEST(Decompose, ComponentsSumBackToSeries) {
  const auto x = synthetic(240, 12, 0.02, 1.5, 0.3, 64);
  const auto d = decompose_additive(x, 12);
  for (std::size_t t = 0; t < x.size(); ++t) {
    if (std::isnan(d.trend[t])) continue;
    EXPECT_NEAR(d.trend[t] + d.seasonal[t] + d.remainder[t], x[t], 1e-9);
  }
}

TEST(Decompose, EdgesAreNaN) {
  const auto x = synthetic(100, 24, 0.0, 1.0, 0.1, 65);
  const auto d = decompose_additive(x, 24);
  EXPECT_TRUE(std::isnan(d.trend.front()));
  EXPECT_TRUE(std::isnan(d.trend.back()));
  EXPECT_TRUE(std::isnan(d.remainder.front()));
}

TEST(Decompose, OddPeriodSupported) {
  const auto x = synthetic(105, 7, 0.01, 1.0, 0.1, 66);
  const auto d = decompose_additive(x, 7);
  EXPECT_EQ(d.period, 7u);
  EXPECT_FALSE(std::isnan(d.trend[52]));
  double sum = 0.0;
  for (double v : d.seasonal_profile()) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(Decompose, NoiseOnlySeriesHasSmallSeasonal) {
  rrp::Rng rng(67);
  std::vector<double> x(480);
  for (auto& v : x) v = rng.normal(5.0, 1.0);
  const auto d = decompose_additive(x, 24);
  for (double v : d.seasonal_profile()) EXPECT_LT(std::fabs(v), 0.8);
}

TEST(Decompose, RequiresTwoFullPeriods) {
  std::vector<double> x(30, 1.0);
  EXPECT_THROW(decompose_additive(x, 24), rrp::ContractViolation);
  EXPECT_THROW(decompose_additive(x, 1), rrp::ContractViolation);
}

}  // namespace
