// A scope guard constructed without a name is destroyed at the end of
// the full expression: the mutex unlocks immediately and the "critical
// section" below runs unguarded.  MutexLock's constructor is
// [[nodiscard]] precisely so this mistake cannot compile under
// -Werror=unused-result (GCC and Clang both enforce it).
#include "common/sync.hpp"

namespace {
rrp::Mutex mu;
int counter = 0;
}  // namespace

int bump() {
#if defined(RRP_NC_BAD)
  rrp::MutexLock{mu};  // temporary: the lock is gone before ++counter
#else
  rrp::MutexLock lock(mu);
#endif
  return ++counter;
}
