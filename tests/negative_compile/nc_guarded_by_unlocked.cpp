// Reading an RRP_GUARDED_BY member without holding its mutex must be
// rejected by Clang's -Wthread-safety analysis (this TU is exercised
// only under Clang; the annotations are no-ops elsewhere).
#include "common/sync.hpp"

namespace {

class Counter {
 public:
  int get() {
#if defined(RRP_NC_BAD)
    return value_;  // no lock held: -Wthread-safety error
#else
    rrp::MutexLock lock(mu_);
    return value_;
#endif
  }

 private:
  rrp::Mutex mu_;
  int value_ RRP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int probe() {
  Counter c;
  return c.get();
}
