// rrp::Mutex is a capability object: copying one would silently split
// a single critical section into two unrelated locks.  Copies must not
// compile.
#include "common/sync.hpp"

namespace {
rrp::Mutex mu;
}  // namespace

int observe() {
#if defined(RRP_NC_BAD)
  rrp::Mutex copy = mu;  // copying a capability is always a bug
  rrp::MutexLock lock(copy);
#else
  rrp::MutexLock lock(mu);
#endif
  return 0;
}
