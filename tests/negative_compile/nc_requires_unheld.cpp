// Calling an RRP_REQUIRES(mu) function without holding mu must be
// rejected by Clang's -Wthread-safety analysis.  This is the contract
// the *_locked() helpers in the branch & bound solver rely on.
#include "common/sync.hpp"

namespace {

class Queue {
 public:
  int pop() {
#if defined(RRP_NC_BAD)
    return pop_locked();  // caller does not hold mu_: error
#else
    rrp::MutexLock lock(mu_);
    return pop_locked();
#endif
  }

 private:
  int pop_locked() RRP_REQUIRES(mu_) { return --size_; }

  rrp::Mutex mu_;
  int size_ RRP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int probe() {
  Queue q;
  return q.pop();
}
