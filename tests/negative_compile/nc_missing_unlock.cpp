// A manually acquired mutex that is still held when the function
// returns is a leak Clang's -Wthread-safety analysis rejects ("mutex is
// still held at the end of function").
#include "common/sync.hpp"

namespace {
rrp::Mutex mu;
int value RRP_GUARDED_BY(mu) = 0;
}  // namespace

int poke() {
#if defined(RRP_NC_BAD)
  mu.lock();
  return value;  // never unlocked: error
#else
  mu.lock();
  const int v = value;
  mu.unlock();
  return v;
#endif
}
