#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using rrp::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 32; ++i)
    futs.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForSingleItemRunsInline) {
  ThreadPool pool(2);
  int called = 0;
  pool.parallel_for(1, [&called](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++called;
  });
  EXPECT_EQ(called, 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 17) throw std::runtime_error("bad index");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<double> out(500);
  pool.parallel_for(500, [&out](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 499.0 * 500.0);
}

TEST(ThreadPool, SizeReflectsRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&rrp::global_pool(), &rrp::global_pool());
  EXPECT_GE(rrp::global_pool().size(), 1u);
}

}  // namespace
