// Cross-layer consistency: the LP machinery (simplex, presolve) applied
// to the *actual planner models* must agree with the exact dynamic
// programs — closing the loop between the generic solver stack and the
// domain solvers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/demand.hpp"
#include "core/srrp_dp.hpp"
#include "core/wagner_whitin.hpp"
#include "lp/presolve.hpp"
#include "milp/branch_and_bound.hpp"

namespace {

using namespace rrp;

core::DrrpInstance random_drrp(std::uint64_t seed, std::size_t horizon) {
  Rng rng(seed);
  core::DrrpInstance inst;
  inst.demand = core::generate_demand(horizon, core::DemandConfig{}, rng);
  inst.compute_price.resize(horizon);
  for (auto& p : inst.compute_price) p = rng.uniform(0.05, 0.9);
  inst.initial_storage = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.6) : 0.0;
  return inst;
}

class LpRelaxationProperties : public ::testing::TestWithParam<int> {};

TEST_P(LpRelaxationProperties, FacilityLocationRelaxationIsIntegral) {
  // The Krarup-Bilde claim behind DESIGN.md decision 5: on the DRRP
  // facility-location model of a *pure* uncapacitated lot-sizing
  // instance (no initial storage: the epsilon budget row breaks the
  // interval structure) the LP relaxation already has an integral
  // optimal chi (what makes B&B finish at the root).
  auto inst = random_drrp(71000 + GetParam(), 10);
  inst.initial_storage = 0.0;
  core::DrrpFlVariables vars;
  const auto model = core::build_drrp_facility_location(inst, &vars);
  const auto lp = model.to_lp();
  const auto sol = lp::solve(lp);
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  for (const auto& chi : vars.chi) {
    const double v = sol.x[chi.id];
    EXPECT_NEAR(v, std::round(v), 1e-6);
  }
  // And the relaxation value already equals the Wagner-Whitin optimum.
  const auto ww = core::solve_drrp_wagner_whitin(inst);
  EXPECT_NEAR(lp.objective_value(sol.x) + model.objective_constant(),
              ww.cost.total(), 1e-5 * (1.0 + ww.cost.total()));
}

TEST_P(LpRelaxationProperties, AggregatedRelaxationLowerBoundsOptimum) {
  const auto inst = random_drrp(72000 + GetParam(), 10);
  core::DrrpVariables vars;
  const auto model = core::build_drrp(inst, &vars);
  const auto sol = lp::solve(model.to_lp());
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  const auto ww = core::solve_drrp_wagner_whitin(inst);
  const double relaxation =
      sol.objective + model.objective_constant();
  EXPECT_LE(relaxation, ww.cost.total() + 1e-6);
}

TEST_P(LpRelaxationProperties, FlRelaxationBoundsEpsilonInstances) {
  // With initial storage the FL relaxation may be fractional, but it
  // must stay a valid lower bound and dominate the aggregated one.
  auto inst = random_drrp(75000 + GetParam(), 10);
  inst.initial_storage = 0.4;
  const auto fl_model = core::build_drrp_facility_location(inst, nullptr);
  const auto agg_model = core::build_drrp(inst, nullptr);
  const auto fl = lp::solve(fl_model.to_lp());
  const auto agg = lp::solve(agg_model.to_lp());
  ASSERT_EQ(fl.status, lp::SolveStatus::Optimal);
  ASSERT_EQ(agg.status, lp::SolveStatus::Optimal);
  const auto ww = core::solve_drrp_wagner_whitin(inst);
  const double fl_bound = fl.objective + fl_model.objective_constant();
  const double agg_bound = agg.objective + agg_model.objective_constant();
  EXPECT_LE(fl_bound, ww.cost.total() + 1e-6);
  EXPECT_GE(fl_bound, agg_bound - 1e-6);
}

TEST_P(LpRelaxationProperties, PresolveAgreesOnPlannerLps) {
  // presolve + solve must reproduce the direct solve on the planner
  // relaxations (they are full of structure presolve likes: equality
  // rows, coupled bounds).
  const auto inst = random_drrp(73000 + GetParam(), 8);
  const auto model = core::build_drrp(inst, nullptr);
  const auto lp = model.to_lp();
  const auto direct = lp::solve(lp);
  const auto via = lp::presolve_and_solve(lp);
  ASSERT_EQ(direct.status, via.status);
  if (direct.status == lp::SolveStatus::Optimal) {
    EXPECT_NEAR(direct.objective, via.objective,
                1e-6 * (1.0 + std::fabs(direct.objective)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LpRelaxationProperties,
                         ::testing::Range(0, 12));

TEST(SolverConsistency, SrrpStrengthenedRelaxationBeatsAggregated) {
  // The path-arc block must never weaken the bound.
  Rng rng(74001);
  core::SrrpInstance inst;
  inst.demand = core::generate_demand(3, core::DemandConfig{}, rng);
  std::vector<std::vector<core::PricePoint>> supports;
  for (int s = 0; s < 3; ++s) {
    const double lo = rng.uniform(0.03, 0.08);
    supports.push_back({core::PricePoint{lo, 0.6, false},
                        core::PricePoint{lo + 0.3, 0.4, false}});
  }
  inst.tree = core::ScenarioTree::build(supports);

  const auto agg_model = core::build_srrp(inst, nullptr);
  const auto fl_model = core::build_srrp_facility_location(inst, nullptr);
  const auto agg_sol = lp::solve(agg_model.to_lp());
  const auto fl_sol = lp::solve(fl_model.to_lp());
  ASSERT_EQ(agg_sol.status, lp::SolveStatus::Optimal);
  ASSERT_EQ(fl_sol.status, lp::SolveStatus::Optimal);
  const double agg_bound = agg_sol.objective + agg_model.objective_constant();
  const double fl_bound = fl_sol.objective + fl_model.objective_constant();
  EXPECT_GE(fl_bound, agg_bound - 1e-7);
  // Both bound the exact optimum from below.
  const auto dp = core::solve_srrp_tree_dp(inst);
  EXPECT_LE(fl_bound, dp.expected_cost + 1e-6);
}

}  // namespace
