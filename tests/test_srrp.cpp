#include "core/srrp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/demand.hpp"

namespace {

using namespace rrp::core;

std::vector<PricePoint> support(
    std::initializer_list<std::pair<double, double>> price_probs) {
  std::vector<PricePoint> out;
  for (const auto& [price, prob] : price_probs)
    out.push_back(PricePoint{price, prob, false});
  return out;
}

SrrpInstance make_instance(std::vector<double> demand,
                           std::vector<std::vector<PricePoint>> supports) {
  SrrpInstance inst;
  inst.demand = std::move(demand);
  inst.tree = ScenarioTree::build(supports);
  return inst;
}

TEST(Srrp, ValidationRequiresMatchingStageCount) {
  auto inst = make_instance({0.4, 0.4}, {support({{0.05, 1.0}})});
  EXPECT_THROW(inst.validate(), rrp::ContractViolation);
}

TEST(Srrp, DegenerateTreeEqualsDrrp) {
  // A tree with a single scenario (one support point per stage) is a
  // deterministic problem: the SRRP optimum must equal the DRRP optimum
  // with the same price path.
  rrp::Rng rng(151);
  const auto demand = generate_demand(6, DemandConfig{}, rng);
  std::vector<std::vector<PricePoint>> supports;
  std::vector<double> prices = {0.06, 0.055, 0.07, 0.05, 0.065, 0.06};
  for (double p : prices) supports.push_back(support({{p, 1.0}}));
  auto srrp_inst = make_instance(demand, supports);
  const SrrpPolicy policy = solve_srrp(srrp_inst);
  ASSERT_TRUE(policy.feasible());

  DrrpInstance drrp_inst;
  drrp_inst.demand = demand;
  drrp_inst.compute_price = prices;
  const RentalPlan plan = solve_drrp(drrp_inst);
  ASSERT_TRUE(plan.feasible());
  EXPECT_NEAR(policy.expected_cost, plan.cost.total(), 1e-5);
}

TEST(Srrp, InventoryBalanceAlongEveryScenario) {
  rrp::Rng rng(152);
  const auto demand = generate_demand(3, DemandConfig{}, rng);
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 0.5}, {0.08, 0.5}}),
      support({{0.05, 0.5}, {0.08, 0.5}}),
      support({{0.06, 1.0}})};
  auto inst = make_instance(demand, supports);
  inst.initial_storage = 0.2;
  const SrrpPolicy policy = solve_srrp(inst);
  ASSERT_TRUE(policy.feasible());
  for (std::size_t leaf : inst.tree.leaves()) {
    double store = inst.initial_storage;
    for (std::size_t v : inst.tree.path_from_root(leaf)) {
      const std::size_t slot = inst.tree.vertex(v).stage - 1;
      store += policy.alpha[v] - inst.demand[slot];
      EXPECT_GT(store, -1e-6);
      EXPECT_NEAR(store, policy.beta[v], 1e-6);
    }
  }
}

TEST(Srrp, ForcingConstraintHoldsPerVertex) {
  rrp::Rng rng(153);
  const auto demand = generate_demand(3, DemandConfig{}, rng);
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 0.6}, {0.3, 0.4}}),
      support({{0.05, 0.6}, {0.3, 0.4}}), support({{0.06, 1.0}})};
  auto inst = make_instance(demand, supports);
  const SrrpPolicy policy = solve_srrp(inst);
  ASSERT_TRUE(policy.feasible());
  for (std::size_t v = 1; v < inst.tree.num_vertices(); ++v) {
    if (!policy.chi[v]) {
      EXPECT_NEAR(policy.alpha[v], 0.0, 1e-7);
    }
  }
}

TEST(Srrp, RecourseAdaptsToPriceState) {
  // Slot-1 price is cheap or very expensive; slot 2 always moderate.
  // In the cheap state the planner should pre-generate for slot 2; in
  // the expensive state it should not rent (serve slot 1 from storage
  // or generate minimally) — i.e. decisions genuinely differ by state.
  std::vector<double> demand = {0.4, 0.4};
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.02, 0.5}, {1.5, 0.5}}),  // cheap vs out-of-bid-like
      support({{0.4, 1.0}})};
  auto inst = make_instance(demand, supports);
  inst.initial_storage = 0.4;  // slot-1 demand can be served from storage
  const SrrpPolicy policy = solve_srrp(inst);
  ASSERT_TRUE(policy.feasible());
  const auto& s1 = inst.tree.stage_vertices(1);
  const std::size_t cheap = s1[0], dear = s1[1];
  EXPECT_EQ(policy.chi[cheap], 1);    // exploit the cheap price
  EXPECT_EQ(policy.chi[dear], 0);     // avoid the expensive state
  EXPECT_GT(policy.alpha[cheap], policy.alpha[dear]);
}

TEST(Srrp, ExpectedCostMatchesManualRecomputation) {
  rrp::Rng rng(154);
  const auto demand = generate_demand(2, DemandConfig{}, rng);
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 0.7}, {0.09, 0.3}}), support({{0.06, 1.0}})};
  auto inst = make_instance(demand, supports);
  const SrrpPolicy policy = solve_srrp(inst);
  ASSERT_TRUE(policy.feasible());
  double expected = 0.0;
  for (std::size_t v = 1; v < inst.tree.num_vertices(); ++v) {
    const auto& vert = inst.tree.vertex(v);
    const std::size_t slot = vert.stage - 1;
    expected += vert.path_prob *
                (inst.costs.generation_cost(policy.alpha[v], slot) +
                 inst.costs.holding(slot) * policy.beta[v] +
                 inst.costs.delivery_cost(inst.demand[slot], slot) +
                 (policy.chi[v] ? vert.price : 0.0));
  }
  EXPECT_NEAR(policy.expected_cost, expected, 1e-6);
}

TEST(Srrp, StochasticSolutionBeatsNaiveFixedPlanInExpectation) {
  // Jensen-style sanity: the SRRP optimum on the tree is no worse than
  // executing the best deterministic plan (built on expected prices)
  // across all scenarios.
  rrp::Rng rng(155);
  const auto demand = generate_demand(3, DemandConfig{}, rng);
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.04, 0.5}, {0.30, 0.5}}),
      support({{0.04, 0.5}, {0.30, 0.5}}),
      support({{0.04, 0.5}, {0.30, 0.5}})};
  auto inst = make_instance(demand, supports);
  const SrrpPolicy policy = solve_srrp(inst);
  ASSERT_TRUE(policy.feasible());

  // Deterministic plan at the expected price 0.17 per slot.
  DrrpInstance det;
  det.demand = demand;
  det.compute_price.assign(3, 0.17);
  const RentalPlan fixed = solve_drrp(det);
  ASSERT_TRUE(fixed.feasible());
  // Expected cost of executing the fixed schedule on the tree: compute
  // cost becomes the realised price at each vertex where chi = 1.
  double fixed_expected = 0.0;
  for (std::size_t v = 1; v < inst.tree.num_vertices(); ++v) {
    const auto& vert = inst.tree.vertex(v);
    const std::size_t slot = vert.stage - 1;
    fixed_expected += vert.path_prob *
                      (inst.costs.generation_cost(fixed.alpha[slot], slot) +
                       inst.costs.holding(slot) * fixed.beta[slot] +
                       inst.costs.delivery_cost(demand[slot], slot) +
                       (fixed.chi[slot] ? vert.price : 0.0));
  }
  EXPECT_LE(policy.expected_cost, fixed_expected + 1e-6);
}

TEST(MakeStageSupports, BuildsBidTruncatedReducedSupports) {
  std::vector<double> history;
  rrp::Rng rng(156);
  for (int i = 0; i < 2000; ++i) history.push_back(0.05 + 0.03 * rng.uniform());
  const auto base = EmpiricalPriceDistribution::from_history(history, 12);
  std::vector<double> bids = {0.065, 0.065, 0.065};
  std::vector<std::size_t> widths = {4, 2, 1};
  const auto supports = make_stage_supports(base, bids, 0.2, widths);
  ASSERT_EQ(supports.size(), 3u);
  EXPECT_LE(supports[0].size(), 4u);
  EXPECT_LE(supports[1].size(), 2u);
  EXPECT_EQ(supports[2].size(), 1u);
  // Stage 0 must contain the out-of-bid state (bid below max price).
  bool has_oob = false;
  for (const auto& p : supports[0]) has_oob |= p.out_of_bid;
  EXPECT_TRUE(has_oob);
  for (const auto& s : supports) {
    double mass = 0.0;
    for (const auto& p : s) mass += p.prob;
    EXPECT_NEAR(mass, 1.0, 1e-9);
  }
}

TEST(MatchStage1Vertex, PicksNearestInBidOrOutOfBid) {
  std::vector<PricePoint> stage1 = {{0.05, 0.4, false},
                                    {0.07, 0.4, false},
                                    {0.2, 0.2, true}};
  std::vector<std::vector<PricePoint>> supports = {stage1};
  const auto tree = ScenarioTree::build(supports);
  const auto& s1 = tree.stage_vertices(1);
  EXPECT_EQ(match_stage1_vertex(tree, true, 0.055), s1[0]);
  EXPECT_EQ(match_stage1_vertex(tree, true, 0.069), s1[1]);
  EXPECT_EQ(match_stage1_vertex(tree, false, 0.5), s1[2]);
}

TEST(MatchStage1Vertex, FallsBackWhenKindMissing) {
  // Tree without an out-of-bid vertex but the auction was lost.
  std::vector<std::vector<PricePoint>> supports = {
      support({{0.05, 0.5}, {0.07, 0.5}})};
  const auto tree = ScenarioTree::build(supports);
  const std::size_t v = match_stage1_vertex(tree, false, 0.08);
  EXPECT_EQ(v, tree.stage_vertices(1)[1]);  // nearest by price
}

}  // namespace

// -- Formulation agreement ---------------------------------------------

namespace {

using namespace rrp::core;

std::vector<PricePoint> support2(
    std::initializer_list<std::pair<double, double>> price_probs) {
  std::vector<PricePoint> out;
  for (const auto& [price, prob] : price_probs)
    out.push_back(PricePoint{price, prob, false});
  return out;
}

class SrrpFormulationAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SrrpFormulationAgreement, AggregatedAndFacilityLocationMatch) {
  rrp::Rng rng(9000 + static_cast<std::uint64_t>(GetParam()));
  const auto demand = generate_demand(3, DemandConfig{}, rng);
  std::vector<std::vector<PricePoint>> supports;
  for (int stage = 0; stage < 3; ++stage) {
    const double lo = rng.uniform(0.02, 0.08);
    const double hi = lo + rng.uniform(0.05, 0.4);
    const double p = rng.uniform(0.2, 0.8);
    supports.push_back(support2({{lo, p}, {hi, 1.0 - p}}));
  }
  SrrpInstance inst;
  inst.demand = demand;
  inst.tree = ScenarioTree::build(supports);
  inst.initial_storage = GetParam() % 2 == 0 ? 0.0 : 0.3;
  const SrrpPolicy agg = solve_srrp(inst, {}, SrrpFormulation::Aggregated);
  const SrrpPolicy fl =
      solve_srrp(inst, {}, SrrpFormulation::FacilityLocation);
  ASSERT_TRUE(agg.feasible());
  ASSERT_TRUE(fl.feasible());
  EXPECT_NEAR(agg.expected_cost, fl.expected_cost,
              1e-5 * (1.0 + agg.expected_cost))
      << "trial " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, SrrpFormulationAgreement,
                         ::testing::Range(0, 10));

}  // namespace
