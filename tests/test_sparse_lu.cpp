// SparseLu validated against the dense rrp::Matrix reference: FTRAN /
// BTRAN solves, product-form eta updates, fill accounting, and the
// singular-basis throw, over random sparse bases and the staircase
// shapes the simplex actually produces on DRRP/SRRP relaxations.
#include "lp/sparse_lu.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace {

using rrp::Matrix;
using rrp::lp::Entry;
using rrp::lp::SparseLu;

/// Column-sparse system: cols[j] holds (row, coeff) entries.
struct System {
  std::size_t m = 0;
  std::vector<std::vector<Entry>> cols;
  std::vector<std::size_t> basis;

  Matrix dense() const {
    Matrix b(m, m);
    for (std::size_t pos = 0; pos < m; ++pos)
      for (const Entry& e : cols[basis[pos]]) b(e.col, pos) += e.coeff;
    return b;
  }
};

/// Random sparse nonsingular basis: a guaranteed diagonal plus a few
/// off-diagonal entries per column.
System random_system(std::size_t m, rrp::Rng& rng) {
  System sys;
  sys.m = m;
  sys.cols.resize(m);
  sys.basis.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    sys.basis[j] = j;
    sys.cols[j].push_back(Entry{j, rng.uniform(1.0, 3.0)});
    const std::size_t extra = static_cast<std::size_t>(rng.uniform_int(0, 2));
    for (std::size_t k = 0; k < extra; ++k) {
      const std::size_t r = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(m) - 1));
      if (r != j) sys.cols[j].push_back(Entry{r, rng.uniform(-1.0, 1.0)});
    }
  }
  return sys;
}

/// Staircase basis shaped like the DRRP deterministic equivalent:
/// column t couples rows t and t-1 (carry-over), plus slack singletons.
System staircase_system(std::size_t m) {
  System sys;
  sys.m = m;
  sys.cols.resize(m);
  sys.basis.resize(m);
  for (std::size_t t = 0; t < m; ++t) {
    sys.basis[t] = t;
    if (t % 3 == 2) {
      sys.cols[t].push_back(Entry{t, -1.0});  // slack singleton
    } else {
      sys.cols[t].push_back(Entry{t, 1.0});
      if (t > 0) sys.cols[t].push_back(Entry{t - 1, -0.9});
    }
  }
  return sys;
}

std::vector<double> random_vector(std::size_t m, rrp::Rng& rng) {
  std::vector<double> v(m);
  for (double& x : v) x = rng.uniform(-5.0, 5.0);
  return v;
}

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d = std::max(d, std::fabs(a[i] - b[i]));
  return d;
}

void expect_solves_match(const System& sys, const SparseLu& lu,
                         rrp::Rng& rng, double tol = 1e-9) {
  const Matrix b = sys.dense();
  const Matrix binv = b.inverse();
  for (int trial = 0; trial < 4; ++trial) {
    const std::vector<double> rhs = random_vector(sys.m, rng);
    std::vector<double> x = rhs;
    lu.ftran(x);
    const std::vector<double> want = binv.multiply(rhs);
    EXPECT_LT(max_abs_diff(x, want), tol) << "ftran mismatch";

    std::vector<double> y = rhs;
    lu.btran(y);
    const std::vector<double> want_t = binv.multiply_transpose(rhs);
    EXPECT_LT(max_abs_diff(y, want_t), tol) << "btran mismatch";
  }
}

TEST(SparseLu, MatchesDenseInverseOnRandomBases) {
  rrp::Rng rng(20260809);
  for (std::size_t m : {1u, 2u, 5u, 17u, 40u}) {
    System sys = random_system(m, rng);
    SparseLu lu;
    lu.factorize(sys.m, sys.cols, sys.basis);
    EXPECT_TRUE(lu.factorized());
    expect_solves_match(sys, lu, rng);
  }
}

TEST(SparseLu, StaircaseBasisFactorsWithoutFill) {
  System sys = staircase_system(30);
  SparseLu lu;
  lu.factorize(sys.m, sys.cols, sys.basis);
  // The staircase needs no elimination fill: nnz(L+U) == nnz(B).
  EXPECT_DOUBLE_EQ(lu.fill_ratio(), 1.0);
  rrp::Rng rng(7);
  expect_solves_match(sys, lu, rng);
}

TEST(SparseLu, DuplicateEntriesWithinColumnAreSummed) {
  System sys;
  sys.m = 2;
  sys.cols.resize(2);
  sys.basis = {0, 1};
  sys.cols[0] = {Entry{0, 1.0}, Entry{0, 1.5}, Entry{1, 0.5}};  // row 0: 2.5
  sys.cols[1] = {Entry{1, 2.0}};
  SparseLu lu;
  lu.factorize(sys.m, sys.cols, sys.basis);
  std::vector<double> x = {2.5, 4.5};  // B * (1, 2)^T
  lu.ftran(x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SparseLu, UpdateMatchesRefactorisation) {
  rrp::Rng rng(42);
  System sys = random_system(25, rng);
  SparseLu lu;
  lu.factorize(sys.m, sys.cols, sys.basis);

  // Replace a few basis columns by spare columns via product-form
  // updates, mirroring what the simplex does per pivot.
  for (std::size_t pivot = 0; pivot < 5; ++pivot) {
    const std::size_t pos = 3 * pivot + 1;
    // New column: dense-ish random with a solid diagonal entry.
    std::vector<Entry> col{Entry{pos, rng.uniform(1.5, 2.5)}};
    col.push_back(
        Entry{(pos + 7) % sys.m, rng.uniform(-1.0, 1.0)});
    const std::size_t j = sys.cols.size();
    sys.cols.push_back(col);

    // w = Binv * A_j through the current factorisation.
    std::vector<double> w(sys.m, 0.0);
    for (const Entry& e : col) w[e.col] += e.coeff;
    lu.ftran(w);
    ASSERT_GT(std::fabs(w[pos]), 1e-9);
    lu.update(pos, w);
    sys.basis[pos] = j;
  }
  EXPECT_EQ(lu.eta_count(), 5u);

  // The updated factorisation must agree with a fresh one (and with the
  // dense inverse) on the new basis.
  rrp::Rng probe(99);
  expect_solves_match(sys, lu, probe, 1e-8);

  SparseLu fresh;
  fresh.factorize(sys.m, sys.cols, sys.basis);
  EXPECT_EQ(fresh.eta_count(), 0u);
  rrp::Rng probe2(99);
  expect_solves_match(sys, fresh, probe2, 1e-8);
}

TEST(SparseLu, SingularBasisThrows) {
  System sys;
  sys.m = 3;
  sys.cols.resize(3);
  sys.basis = {0, 1, 2};
  sys.cols[0] = {Entry{0, 1.0}, Entry{1, 1.0}};
  sys.cols[1] = {Entry{0, 2.0}, Entry{1, 2.0}};  // parallel to column 0
  sys.cols[2] = {Entry{2, 1.0}};
  SparseLu lu;
  EXPECT_THROW(lu.factorize(sys.m, sys.cols, sys.basis),
               rrp::NumericalError);
  EXPECT_FALSE(lu.factorized());

  // The object must stay usable: refactorising a good basis succeeds.
  sys.cols[1] = {Entry{1, 1.0}};
  lu.factorize(sys.m, sys.cols, sys.basis);
  EXPECT_TRUE(lu.factorized());
  std::vector<double> x = {1.0, 1.0, 1.0};
  lu.ftran(x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 0.0, 1e-12);
  EXPECT_NEAR(x[2], 1.0, 1e-12);
}

TEST(SparseLu, EmptyBasisIsTrivial) {
  SparseLu lu;
  std::vector<std::vector<Entry>> cols;
  std::vector<std::size_t> basis;
  lu.factorize(0, cols, basis);
  std::vector<double> x;
  lu.ftran(x);
  lu.btran(x);
  EXPECT_EQ(lu.eta_count(), 0u);
}

TEST(SparseLu, EtaNonzeroAccountingTracksUpdates) {
  rrp::Rng rng(5);
  System sys = random_system(10, rng);
  SparseLu lu;
  lu.factorize(sys.m, sys.cols, sys.basis);
  EXPECT_EQ(lu.eta_nonzeros(), 0u);

  std::vector<double> w(sys.m, 0.0);
  w[2] = 1.0;
  w[5] = 0.25;
  w[7] = -0.5;
  lu.update(2, w);
  EXPECT_EQ(lu.eta_count(), 1u);
  EXPECT_EQ(lu.eta_nonzeros(), 2u);  // off-pivot entries only

  lu.factorize(sys.m, sys.cols, sys.basis);
  EXPECT_EQ(lu.eta_count(), 0u);
  EXPECT_EQ(lu.eta_nonzeros(), 0u);
}

}  // namespace
