// Equivalence property suite (ISSUE 10): ReplanMode::Incremental must
// be indistinguishable from ReplanMode::Rebuild.  The incremental path
// maintains its models (sliding distribution, Markov chain, scenario
// tree) with arithmetic bit-identical to the from-scratch path, so for
// policies whose models carry no fitted-optimizer state (ExpectedMean
// bids on the empirical distribution), every plan, slot decision and
// cost must match EXACTLY — not within a tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "core/demand.hpp"
#include "core/policies.hpp"
#include "core/rolling_horizon.hpp"

namespace {

using namespace rrp;
using namespace rrp::core;

/// A random positive price stream: geometric random walk clamped to the
/// paper's plausible spot band, different shape per seed.
SimulationInputs random_inputs(std::uint64_t seed,
                               std::size_t history_hours = 168,
                               std::size_t eval_hours = 24) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  SimulationInputs in;
  double p = rng.uniform(0.2, 0.5);
  auto step = [&]() {
    p *= std::exp(0.08 * rng.normal());
    if (p < 0.05) p = 0.05;
    if (p > 2.0) p = 2.0;
    return p;
  };
  in.history.reserve(history_hours);
  for (std::size_t i = 0; i < history_hours; ++i) in.history.push_back(step());
  in.actual_spot.reserve(eval_hours);
  for (std::size_t i = 0; i < eval_hours; ++i)
    in.actual_spot.push_back(step());
  in.demand = generate_demand(eval_hours, DemandConfig{}, rng);
  return in;
}

void expect_identical(const SimulationResult& a, const SimulationResult& b,
                      const char* label) {
  SCOPED_TRACE(label);
  // Exact equality throughout: the incremental path is bit-identical
  // by construction, so any ulp of drift is a bug.
  EXPECT_EQ(a.total_cost(), b.total_cost());
  EXPECT_EQ(a.rentals, b.rentals);
  EXPECT_EQ(a.out_of_bid_events, b.out_of_bid_events);
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (std::size_t i = 0; i < a.slots.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.slots[i].rented, b.slots[i].rented);
    EXPECT_EQ(a.slots[i].won, b.slots[i].won);
    EXPECT_EQ(a.slots[i].spot, b.slots[i].spot);
    EXPECT_EQ(a.slots[i].bid, b.slots[i].bid);
    EXPECT_EQ(a.slots[i].price_paid, b.slots[i].price_paid);
    EXPECT_EQ(a.slots[i].alpha, b.slots[i].alpha);
    EXPECT_EQ(a.slots[i].inventory, b.slots[i].inventory);
  }
}

SimulationResult run_mode(const SimulationInputs& in, PolicyConfig policy,
                          ReplanMode mode, std::size_t update_every,
                          const rrp::testing::FaultInjector* injector =
                              nullptr) {
  policy.replan_mode = mode;
  policy.model_update_every = update_every;
  return simulate_policy(in, policy, injector);
}

TEST(ReplanEquivalence, PropertyThirtyRandomStreams) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    // Rotate the configuration with the seed so the 30 streams also
    // sweep policy (DRRP / SRRP) and refresh cadence (1 / 4).
    const bool stochastic = seed % 3 == 0;
    const std::size_t update_every = seed % 2 == 0 ? 4 : 1;
    const SimulationInputs in = random_inputs(seed);
    const PolicyConfig policy =
        stochastic ? sto_exp_mean_policy() : det_exp_mean_policy();

    const auto rebuild =
        run_mode(in, policy, ReplanMode::Rebuild, update_every);
    const auto incremental =
        run_mode(in, policy, ReplanMode::Incremental, update_every);

    SCOPED_TRACE(seed);
    expect_identical(rebuild, incremental, policy.name.c_str());
    EXPECT_GT(incremental.model_refreshes, 0u);
    EXPECT_EQ(incremental.model_refreshes, rebuild.model_refreshes);
    if (stochastic) {
      // The incremental runner repaired trees the rebuild runner built
      // from scratch — and still matched exactly.
      EXPECT_GT(incremental.tree_repairs, 0u);
      EXPECT_EQ(rebuild.tree_repairs, 0u);
    }
  }
}

TEST(ReplanEquivalence, IncrementalIsTheDefaultAndClassicPathUnchanged) {
  // model_update_every = 0 (the default) means fit-once-at-start: both
  // modes must then reproduce the exact classic behaviour.
  const SimulationInputs in = random_inputs(77);
  const auto classic = simulate_policy(in, det_exp_mean_policy());
  const auto rebuild = run_mode(in, det_exp_mean_policy(),
                                ReplanMode::Rebuild, 0);
  const auto incremental = run_mode(in, det_exp_mean_policy(),
                                    ReplanMode::Incremental, 0);
  expect_identical(classic, rebuild, "classic-vs-rebuild");
  expect_identical(classic, incremental, "classic-vs-incremental");
  EXPECT_EQ(incremental.model_refreshes, 0u);
}

TEST(ReplanEquivalence, SlidingWindowShorterThanHistory) {
  // fit_window below the history length: the sliding window must track
  // exactly the tail the rebuild path re-extracts every refresh.
  SimulationInputs in = random_inputs(13, /*history_hours=*/240);
  PolicyConfig policy = det_exp_mean_policy();
  policy.fit_window = 96;
  const auto rebuild = run_mode(in, policy, ReplanMode::Rebuild, 1);
  const auto incremental = run_mode(in, policy, ReplanMode::Incremental, 1);
  expect_identical(rebuild, incremental, "short-window");
}

TEST(ReplanEquivalenceChaos, FaultyPriceFeedStaysEquivalent) {
  // A broken telemetry feed (gaps, NaN ticks, spikes, delays) degrades
  // the observed stream identically in both modes: the sanitised `used`
  // value is what feeds the models, so incremental maintenance over the
  // faulted stream must still match the full rebuild over it.
  const SimulationInputs in = random_inputs(4242);
  rrp::testing::FaultInjector faults(2012);
  faults.inject_price_gap(3);
  faults.inject_price_nan(7);
  faults.inject_price_spike(11);
  faults.inject_price_delay(15);
  faults.inject_price_gap(19);
  faults.inject_price_nan(21);

  for (const PolicyConfig& policy :
       {det_exp_mean_policy(), sto_exp_mean_policy()}) {
    const auto rebuild =
        run_mode(in, policy, ReplanMode::Rebuild, 1, &faults);
    const auto incremental =
        run_mode(in, policy, ReplanMode::Incremental, 1, &faults);
    expect_identical(rebuild, incremental, policy.name.c_str());
    EXPECT_EQ(incremental.price_faults.size(), rebuild.price_faults.size());
    EXPECT_GT(incremental.price_faults.size(), 0u);
  }
}

}  // namespace
