// Property-based testing of the simplex solver on randomly generated
// programs.  Rather than asserting exact optima, we verify solver
// invariants: primal feasibility of reported points, agreement between
// Dantzig and Bland pricing, and weak-duality-style bound sanity against
// brute-force vertex enumeration on small instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "lp/simplex.hpp"

namespace {

using namespace rrp::lp;

struct RandomLpParams {
  std::uint64_t seed;
  std::size_t n_vars;
  std::size_t n_rows;
  bool allow_equalities;
};

LinearProgram make_random_lp(const RandomLpParams& p) {
  rrp::Rng rng(p.seed);
  LinearProgram lp;
  for (std::size_t j = 0; j < p.n_vars; ++j) {
    const double lo = rng.uniform(-2.0, 0.5);
    const double hi = lo + rng.uniform(0.5, 4.0);
    lp.add_variable(lo, hi, rng.uniform(-3.0, 3.0));
  }
  for (std::size_t r = 0; r < p.n_rows; ++r) {
    std::vector<Entry> entries;
    for (std::size_t j = 0; j < p.n_vars; ++j) {
      if (rng.bernoulli(0.6)) {
        entries.push_back(Entry{j, rng.uniform(-2.0, 2.0)});
      }
    }
    if (entries.empty()) entries.push_back(Entry{0, 1.0});
    // Anchor the row around a feasible interior point (all variables at
    // bound midpoints) so most generated programs are feasible.
    double mid = 0.0;
    for (const Entry& e : entries) {
      mid += e.coeff * 0.5 *
             (lp.variable(e.col).lo + lp.variable(e.col).hi);
    }
    if (p.allow_equalities && rng.bernoulli(0.2)) {
      lp.add_row(std::move(entries), mid, mid);
    } else {
      const double slack_lo = rng.uniform(0.1, 2.0);
      const double slack_hi = rng.uniform(0.1, 2.0);
      lp.add_row(std::move(entries), mid - slack_lo, mid + slack_hi);
    }
  }
  return lp;
}

class SimplexRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomProperty, ReportedOptimaAreFeasible) {
  RandomLpParams p;
  p.seed = 1000 + static_cast<std::uint64_t>(GetParam());
  p.n_vars = 4 + static_cast<std::size_t>(GetParam()) % 9;
  p.n_rows = 2 + static_cast<std::size_t>(GetParam()) % 7;
  p.allow_equalities = GetParam() % 3 == 0;
  const LinearProgram lp = make_random_lp(p);
  const Solution sol = solve(lp);
  if (sol.status == SolveStatus::Optimal) {
    EXPECT_LT(lp.max_violation(sol.x), 1e-6);
    EXPECT_NEAR(lp.objective_value(sol.x), sol.objective, 1e-6);
  } else {
    // Bounded boxes + finite row ranges can never be unbounded.
    EXPECT_EQ(sol.status, SolveStatus::Infeasible);
  }
}

TEST_P(SimplexRandomProperty, DantzigAndBlandAgree) {
  RandomLpParams p;
  p.seed = 5000 + static_cast<std::uint64_t>(GetParam());
  p.n_vars = 3 + static_cast<std::size_t>(GetParam()) % 6;
  p.n_rows = 2 + static_cast<std::size_t>(GetParam()) % 5;
  p.allow_equalities = true;
  const LinearProgram lp = make_random_lp(p);
  const Solution dantzig = solve(lp);
  SimplexOptions bland_opt;
  bland_opt.pricing = Pricing::Bland;
  const Solution bland = solve(lp, bland_opt);
  ASSERT_EQ(dantzig.status, bland.status);
  if (dantzig.status == SolveStatus::Optimal) {
    EXPECT_NEAR(dantzig.objective, bland.objective,
                1e-6 * (1.0 + std::fabs(dantzig.objective)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplexRandomProperty,
                         ::testing::Range(0, 40));

// On 2-variable programs we can brute-force the optimum over a fine
// grid of the feasible box and confirm the simplex never does worse.
class SimplexGridCheck : public ::testing::TestWithParam<int> {};

TEST_P(SimplexGridCheck, NeverWorseThanGridSearch) {
  RandomLpParams p;
  p.seed = 9000 + static_cast<std::uint64_t>(GetParam());
  p.n_vars = 2;
  p.n_rows = 3;
  p.allow_equalities = false;
  const LinearProgram lp = make_random_lp(p);
  const Solution sol = solve(lp);
  if (sol.status != SolveStatus::Optimal) return;

  double best_grid = sol.objective + 1.0;
  const int steps = 120;
  for (int i = 0; i <= steps; ++i) {
    for (int j = 0; j <= steps; ++j) {
      std::vector<double> x = {
          lp.variable(0).lo + (lp.variable(0).hi - lp.variable(0).lo) * i /
                                  static_cast<double>(steps),
          lp.variable(1).lo + (lp.variable(1).hi - lp.variable(1).lo) * j /
                                  static_cast<double>(steps)};
      if (lp.max_violation(x) > 1e-9) continue;
      best_grid = std::min(best_grid, lp.objective_value(x));
    }
  }
  // The simplex optimum must be at least as good as any grid point
  // (grid points are feasible; simplex minimises).
  EXPECT_LE(sol.objective, best_grid + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplexGridCheck, ::testing::Range(0, 25));

}  // namespace
