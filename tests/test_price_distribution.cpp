#include "core/price_distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace {

using namespace rrp::core;

TEST(PriceDistribution, ExactWhenSupportFits) {
  std::vector<double> prices = {0.05, 0.06, 0.06, 0.07};
  const auto d = EmpiricalPriceDistribution::from_history(prices, 16);
  ASSERT_EQ(d.support_size(), 3u);
  EXPECT_DOUBLE_EQ(d.values()[0], 0.05);
  EXPECT_DOUBLE_EQ(d.probabilities()[1], 0.5);
  EXPECT_NEAR(d.mean(), 0.06, 1e-12);
}

TEST(PriceDistribution, ClusteringPreservesMeanAndMass) {
  rrp::Rng rng(141);
  std::vector<double> prices(5000);
  double true_mean = 0.0;
  for (auto& p : prices) {
    p = 0.05 + 0.02 * rng.uniform();
    true_mean += p;
  }
  true_mean /= static_cast<double>(prices.size());
  const auto d = EmpiricalPriceDistribution::from_history(prices, 8);
  EXPECT_LE(d.support_size(), 8u);
  double mass = 0.0;
  for (double p : d.probabilities()) mass += p;
  EXPECT_NEAR(mass, 1.0, 1e-9);
  EXPECT_NEAR(d.mean(), true_mean, 1e-3);
}

TEST(PriceDistribution, ClusteredSupportIsSorted) {
  rrp::Rng rng(142);
  std::vector<double> prices(1000);
  for (auto& p : prices) p = 0.04 + 0.05 * rng.uniform();
  const auto d = EmpiricalPriceDistribution::from_history(prices, 6);
  for (std::size_t i = 1; i < d.support_size(); ++i)
    EXPECT_GT(d.values()[i], d.values()[i - 1]);
}

TEST(PriceDistribution, OutOfBidProbability) {
  std::vector<double> values = {0.05, 0.06, 0.08};
  std::vector<double> probs = {0.5, 0.3, 0.2};
  const EmpiricalPriceDistribution d(values, probs);
  EXPECT_NEAR(d.out_of_bid_probability(0.07), 0.2, 1e-12);
  EXPECT_NEAR(d.out_of_bid_probability(0.04), 1.0, 1e-12);
  EXPECT_NEAR(d.out_of_bid_probability(0.10), 0.0, 1e-12);
}

TEST(PriceDistribution, BidTruncationImplementsEquation10) {
  // Paper eq. (10): keep s <= bid; the rest becomes Pr(Cp = lambda).
  std::vector<double> values = {0.05, 0.06, 0.08};
  std::vector<double> probs = {0.5, 0.3, 0.2};
  const EmpiricalPriceDistribution d(values, probs);
  const auto pts = d.truncate_at_bid(0.065, /*lambda=*/0.2);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].price, 0.05);
  EXPECT_FALSE(pts[0].out_of_bid);
  EXPECT_DOUBLE_EQ(pts[1].price, 0.06);
  EXPECT_TRUE(pts[2].out_of_bid);
  EXPECT_DOUBLE_EQ(pts[2].price, 0.2);
  EXPECT_NEAR(pts[2].prob, 0.2, 1e-12);
  double mass = 0.0;
  for (const auto& p : pts) mass += p.prob;
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(PriceDistribution, HighBidHasNoOutOfBidState) {
  std::vector<double> values = {0.05, 0.06};
  std::vector<double> probs = {0.6, 0.4};
  const EmpiricalPriceDistribution d(values, probs);
  const auto pts = d.truncate_at_bid(0.1, 0.2);
  ASSERT_EQ(pts.size(), 2u);
  for (const auto& p : pts) EXPECT_FALSE(p.out_of_bid);
}

TEST(PriceDistribution, LowBidIsAllOutOfBid) {
  std::vector<double> values = {0.05, 0.06};
  std::vector<double> probs = {0.6, 0.4};
  const EmpiricalPriceDistribution d(values, probs);
  const auto pts = d.truncate_at_bid(0.01, 0.2);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_TRUE(pts[0].out_of_bid);
  EXPECT_NEAR(pts[0].prob, 1.0, 1e-12);
}

TEST(PriceDistribution, ConstructionValidation) {
  EXPECT_THROW(EmpiricalPriceDistribution({}, {}), rrp::ContractViolation);
  EXPECT_THROW(EmpiricalPriceDistribution({0.06, 0.05}, {0.5, 0.5}),
               rrp::ContractViolation);  // not sorted
  EXPECT_THROW(EmpiricalPriceDistribution({0.05}, {0.9}),
               rrp::ContractViolation);  // mass != 1
}

TEST(ReduceSupport, NoOpWhenWithinBudget) {
  std::vector<PricePoint> pts = {{0.05, 0.5, false}, {0.06, 0.5, false}};
  const auto out = reduce_support(pts, 4);
  ASSERT_EQ(out.size(), 2u);
}

TEST(ReduceSupport, ClustersToBudgetPreservingOutOfBid) {
  std::vector<PricePoint> pts;
  for (int i = 0; i < 10; ++i)
    pts.push_back(PricePoint{0.05 + 0.001 * i, 0.08, false});
  pts.push_back(PricePoint{0.2, 0.2, true});
  const auto out = reduce_support(pts, 4);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_TRUE(out.back().out_of_bid);
  EXPECT_NEAR(out.back().prob, 0.2, 1e-12);
  double mass = 0.0;
  for (const auto& p : out) mass += p.prob;
  EXPECT_NEAR(mass, 1.0, 1e-9);
  // Mean preserved by probability-weighted clustering.
  EXPECT_NEAR(mean_of(out), mean_of(pts), 1e-9);
}

TEST(ReduceSupport, ExpectedValueCollapseAtWidthOne) {
  std::vector<PricePoint> pts = {{0.05, 0.6, false},
                                 {0.08, 0.2, false},
                                 {0.2, 0.2, true}};
  const auto out = reduce_support(pts, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].out_of_bid);
  EXPECT_NEAR(out[0].prob, 1.0, 1e-12);
  EXPECT_NEAR(out[0].price, 0.05 * 0.6 + 0.08 * 0.2 + 0.2 * 0.2, 1e-12);
}

TEST(ReduceSupport, PureOutOfBidSurvivesCollapse) {
  std::vector<PricePoint> pts = {{0.2, 1.0, true}};
  const auto out = reduce_support(pts, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].out_of_bid);
}

TEST(MeanOf, WeightedMean) {
  std::vector<PricePoint> pts = {{1.0, 0.25, false}, {3.0, 0.75, false}};
  EXPECT_NEAR(mean_of(pts), 2.5, 1e-12);
}

// --- SlidingEmpiricalDistribution (ISSUE 10) ---------------------------
//
// The contract is bit-identity, not closeness: snapshot() must return
// EXACTLY what from_history() returns on the same window, and mean()
// must equal rrp::stats::mean on the window vector, so every comparison
// below is EXPECT_EQ on doubles.

void expect_bit_identical(const SlidingEmpiricalDistribution& sliding,
                          std::span<const double> window,
                          std::size_t max_support) {
  const auto batch =
      EmpiricalPriceDistribution::from_history(window, max_support);
  const auto snap = sliding.snapshot(max_support);
  ASSERT_EQ(snap.support_size(), batch.support_size());
  for (std::size_t i = 0; i < snap.support_size(); ++i) {
    EXPECT_EQ(snap.values()[i], batch.values()[i]) << "support " << i;
    EXPECT_EQ(snap.probabilities()[i], batch.probabilities()[i])
        << "support " << i;
  }
  EXPECT_EQ(sliding.mean(), rrp::stats::mean(window));
}

TEST(SlidingDistribution, MatchesBatchWhilePartiallyFull) {
  SlidingEmpiricalDistribution sliding(8);
  std::vector<double> seen;
  for (double p : {0.3, 0.1, 0.3, 0.7, 0.2}) {
    sliding.push(p);
    seen.push_back(p);
    expect_bit_identical(sliding, seen, 16);
  }
  EXPECT_FALSE(sliding.full());
  EXPECT_EQ(sliding.size(), 5u);
  EXPECT_EQ(sliding.distinct(), 4u);
}

TEST(SlidingDistribution, EvictionMatchesBatchTail) {
  SlidingEmpiricalDistribution sliding(4);
  std::vector<double> all = {0.5, 0.2, 0.2, 0.9, 0.1, 0.5, 0.2, 0.3};
  for (std::size_t i = 0; i < all.size(); ++i) {
    sliding.push(all[i]);
    const std::size_t n = std::min<std::size_t>(i + 1, 4);
    const std::span<const double> tail(all.data() + (i + 1 - n), n);
    expect_bit_identical(sliding, tail, 16);
    ASSERT_EQ(sliding.window(),
              std::vector<double>(tail.begin(), tail.end()));
  }
}

TEST(SlidingDistribution, PropertyRandomStreamsBitIdenticalQuantiles) {
  // 30 random streams x rolling windows, clustering both above and
  // below the support cap; the sliding quantile buckets must match the
  // batch path bit for bit at every step.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    rrp::Rng rng(seed * 1234567ULL);
    const std::size_t capacity = 16 + seed % 48;
    const std::size_t max_support = seed % 4 == 0 ? 4 : 16;
    SlidingEmpiricalDistribution sliding(capacity);
    std::vector<double> all;
    for (std::size_t i = 0; i < 3 * capacity; ++i) {
      // Quantised prices: collisions exercise the multiplicity index.
      const double p =
          0.05 + 0.01 * static_cast<double>(rng.uniform_int(0, 40));
      sliding.push(p);
      all.push_back(p);
      const std::size_t n = std::min(all.size(), capacity);
      const std::span<const double> tail(all.data() + (all.size() - n), n);
      expect_bit_identical(sliding, tail, max_support);
    }
    EXPECT_TRUE(sliding.full());
  }
}

TEST(SlidingDistribution, RejectsUnusableObservations) {
  SlidingEmpiricalDistribution sliding(4);
  EXPECT_THROW(sliding.push(0.0), rrp::ContractViolation);
  EXPECT_THROW(sliding.push(-1.0), rrp::ContractViolation);
  EXPECT_THROW(sliding.push(std::nan("")), rrp::ContractViolation);
  EXPECT_THROW(sliding.mean(), rrp::ContractViolation);  // empty window
}

TEST(SlidingDistributionConcurrency, ParallelReadersAreRaceFree) {
  // Writes happen-before the reader threads start; concurrent const
  // queries (mean / snapshot / window) must then be race-free — this is
  // the test the CI TSan job pins.
  SlidingEmpiricalDistribution sliding(64);
  rrp::Rng rng(7);
  for (std::size_t i = 0; i < 200; ++i)
    sliding.push(0.05 + 0.01 * static_cast<double>(rng.uniform_int(0, 30)));
  const double expected_mean = sliding.mean();
  const auto expected = sliding.snapshot(8);

  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(sliding.mean(), expected_mean);
        const auto snap = sliding.snapshot(8);
        ASSERT_EQ(snap.support_size(), expected.support_size());
        EXPECT_EQ(snap.values(), expected.values());
        EXPECT_EQ(sliding.window().size(), 64u);
      }
    });
  }
  for (auto& r : readers) r.join();
}

}  // namespace
