#include "lp/presolve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "lp/simplex.hpp"

namespace {

using namespace rrp::lp;

TEST(Presolve, SingletonRowBecomesBound) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 10.0, 1.0, "x");
  const auto y = lp.add_variable(0.0, 10.0, 1.0, "y");
  lp.add_row({{x, 2.0}}, 4.0, 6.0);         // 2x in [4,6] -> x in [2,3]
  lp.add_row({{x, 1.0}, {y, 1.0}}, 5.0, kInfinity);
  const auto pre = presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.rows_removed, 1u);
  EXPECT_EQ(pre.reduced.num_rows(), 1u);
  // x survives with tightened bounds.
  ASSERT_EQ(pre.var_map.size(), 2u);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).lo, 2.0);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).hi, 3.0);
}

TEST(Presolve, NegativeCoefficientSingleton) {
  LinearProgram lp;
  const auto x = lp.add_variable(-10.0, 10.0, 1.0);
  lp.add_row({{x, -2.0}}, 2.0, 6.0);  // -2x in [2,6] -> x in [-3,-1]
  const auto pre = presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  // The tightened column has no remaining rows, so the empty-column
  // reduction fixes it at the objective-optimising bound.
  ASSERT_TRUE(pre.fixed[x].has_value());
  EXPECT_DOUBLE_EQ(*pre.fixed[x], -3.0);
  EXPECT_EQ(pre.var_map.size(), 0u);
  EXPECT_NEAR(pre.objective_offset, -3.0, 1e-12);
}

TEST(Presolve, FixedVariableSubstituted) {
  LinearProgram lp;
  const auto x = lp.add_variable(2.5, 2.5, 3.0, "x");  // fixed
  const auto y = lp.add_variable(0.0, 10.0, 1.0, "y");
  lp.add_row({{x, 2.0}, {y, 1.0}}, 7.0, kInfinity);  // => y >= 2
  const auto pre = presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  ASSERT_TRUE(pre.fixed[x].has_value());
  EXPECT_DOUBLE_EQ(*pre.fixed[x], 2.5);
  // Substitution shifts the row to y >= 2, which is itself a singleton
  // and collapses into y's lower bound; the then-empty column y is
  // fixed at that bound (its objective coefficient is positive).
  EXPECT_EQ(pre.reduced.num_rows(), 0u);
  EXPECT_EQ(pre.vars_removed, 2u);
  ASSERT_TRUE(pre.fixed[y].has_value());
  EXPECT_DOUBLE_EQ(*pre.fixed[y], 2.0);
  EXPECT_NEAR(pre.objective_offset, 9.5, 1e-12);
}

TEST(Presolve, CascadeSingletonFixesVariable) {
  // Singleton collapses x to a point; substitution turns the second
  // row into a singleton on y, tightening it too.
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 10.0, 1.0);
  const auto y = lp.add_variable(0.0, 10.0, 1.0);
  lp.add_row({{x, 1.0}}, 4.0, 4.0);            // x = 4
  lp.add_row({{x, 1.0}, {y, 1.0}}, 6.0, 9.0);  // => y in [2,5]
  const auto pre = presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_TRUE(pre.fixed[x].has_value());
  EXPECT_EQ(pre.reduced.num_rows(), 0u);
  // y in [2,5] is left without rows and fixed at its cheaper bound.
  ASSERT_TRUE(pre.fixed[y].has_value());
  EXPECT_DOUBLE_EQ(*pre.fixed[y], 2.0);
}

TEST(Presolve, DetectsBoundInfeasibility) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 1.0, 1.0);
  lp.add_row({{x, 1.0}}, 5.0, kInfinity);  // x >= 5 impossible
  const auto pre = presolve(lp);
  EXPECT_TRUE(pre.infeasible);
}

TEST(Presolve, DetectsEmptyRowInfeasibility) {
  LinearProgram lp;
  const auto x = lp.add_variable(3.0, 3.0, 1.0);  // fixed at 3
  lp.add_row({{x, 1.0}}, 5.0, 7.0);  // becomes empty row 0 in [2,4]
  const auto pre = presolve(lp);
  EXPECT_TRUE(pre.infeasible);
}

TEST(Presolve, RestoreLiftsSolutions) {
  LinearProgram lp;
  const auto x = lp.add_variable(1.5, 1.5, 1.0);
  const auto y = lp.add_variable(0.0, 10.0, 1.0);
  const auto z = lp.add_variable(0.0, 10.0, 2.0);
  lp.add_row({{y, 1.0}, {z, 1.0}}, 4.0, kInfinity);
  const auto pre = presolve(lp);
  ASSERT_EQ(pre.var_map.size(), 2u);
  const auto x_full = pre.restore({4.0, 0.0});
  EXPECT_DOUBLE_EQ(x_full[x], 1.5);
  EXPECT_DOUBLE_EQ(x_full[y], 4.0);
  EXPECT_DOUBLE_EQ(x_full[z], 0.0);
}

TEST(Presolve, ActivityBoundTightening) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 10.0, 1.0, "x");
  const auto y = lp.add_variable(1.0, 10.0, 1.0, "y");
  lp.add_row({{x, 1.0}, {y, 1.0}}, -kInfinity, 4.0);
  const auto pre = presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  // x <= 4 - min(y) = 3 and y <= 4 - min(x) = 4.
  ASSERT_EQ(pre.var_map.size(), 2u);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).hi, 3.0);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(1).hi, 4.0);
  EXPECT_EQ(pre.reduced.num_rows(), 1u);
}

TEST(Presolve, RedundantRowDropped) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 1.0, 1.0);
  const auto y = lp.add_variable(0.0, 1.0, 1.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, -5.0, 5.0);  // never binding
  const auto pre = presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.rows_removed, 1u);
  EXPECT_EQ(pre.reduced.num_rows(), 0u);
  // The freed columns collapse onto their cheaper bound.
  ASSERT_TRUE(pre.fixed[x].has_value());
  ASSERT_TRUE(pre.fixed[y].has_value());
  EXPECT_DOUBLE_EQ(*pre.fixed[x], 0.0);
  EXPECT_DOUBLE_EQ(*pre.fixed[y], 0.0);
}

TEST(Presolve, ForcingConstraintFixesAllVariables) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 2.0, 1.0);
  const auto y = lp.add_variable(0.0, 3.0, 1.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, 5.0, kInfinity);  // only x=2, y=3 works
  const auto pre = presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  ASSERT_TRUE(pre.fixed[x].has_value());
  ASSERT_TRUE(pre.fixed[y].has_value());
  EXPECT_DOUBLE_EQ(*pre.fixed[x], 2.0);
  EXPECT_DOUBLE_EQ(*pre.fixed[y], 3.0);
  EXPECT_NEAR(pre.objective_offset, 5.0, 1e-12);
}

TEST(Presolve, ActivityProvesInfeasibility) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 2.0, 1.0);
  const auto y = lp.add_variable(0.0, 3.0, 1.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, 5.5, kInfinity);  // max activity 5
  const auto pre = presolve(lp);
  EXPECT_TRUE(pre.infeasible);
}

TEST(Presolve, FreeZeroCostSingletonAbsorbsRow) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 10.0, 1.0, "x");
  const auto z = lp.add_variable(-kInfinity, kInfinity, 0.0, "z");
  lp.add_row({{x, 1.0}, {z, 1.0}}, 3.0, 3.0);
  const auto pre = presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  // z soaks up the equality, the row goes, and x is left unconstrained
  // (then fixed at its cheaper bound 0).
  EXPECT_EQ(pre.reduced.num_rows(), 0u);
  EXPECT_EQ(pre.var_map.size(), 0u);
  ASSERT_EQ(pre.singletons.size(), 1u);
  const auto full = pre.restore({});
  EXPECT_DOUBLE_EQ(full[x], 0.0);
  EXPECT_DOUBLE_EQ(full[z], 3.0);  // restores x + z = 3
  EXPECT_LT(lp.max_violation(full), 1e-9);
}

TEST(Presolve, BoundedZeroCostSingletonNeedsCoverage) {
  LinearProgram lp;
  // 2z can absorb any x in [0,6] against row bounds [0,8]...
  const auto x = lp.add_variable(0.0, 6.0, 1.0);
  const auto z = lp.add_variable(0.0, 10.0, 0.0);
  lp.add_row({{x, 1.0}, {z, 2.0}}, 0.0, 8.0);
  const auto pre = presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.singletons.size(), 1u);
  const auto full = pre.restore({});
  EXPECT_LT(lp.max_violation(full), 1e-9);

  // ...but a singleton with objective weight is never eliminated (its
  // value trades off against the cost, which restore cannot replay).
  LinearProgram lp2;
  lp2.add_variable(0.0, 6.0, 1.0);
  const auto z2 = lp2.add_variable(0.0, 10.0, 0.5);
  lp2.add_row({{0, 1.0}, {z2, 2.0}}, 0.0, 8.0);
  const auto pre2 = presolve(lp2);
  ASSERT_FALSE(pre2.infeasible);
  EXPECT_TRUE(pre2.singletons.empty());
}

TEST(Presolve, EmptyAfterPresolveStillSolves) {
  // Everything reduces away; presolve_and_solve must report the
  // original optimum from the bookkeeping alone.
  LinearProgram lp;
  const auto x = lp.add_variable(2.5, 2.5, 3.0);  // fixed
  const auto y = lp.add_variable(0.0, 10.0, 1.0);
  lp.add_row({{x, 2.0}, {y, 1.0}}, 7.0, kInfinity);  // => y >= 2
  const auto pre = presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.reduced.num_variables(), 0u);
  const Solution sol = presolve_and_solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 9.5, 1e-9);
  EXPECT_DOUBLE_EQ(sol.x[x], 2.5);
  EXPECT_DOUBLE_EQ(sol.x[y], 2.0);
}

TEST(Presolve, NoRowsProgramCollapses) {
  LinearProgram lp;
  lp.add_variable(-1.0, 4.0, 2.0);   // min at lo
  lp.add_variable(-3.0, 2.0, -1.0);  // min at hi
  const Solution sol = presolve_and_solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, -4.0, 1e-12);
}

class PresolveEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PresolveEquivalence, SolveMatchesDirectSolve) {
  // Random programs rich in singletons and fixed variables: presolve +
  // solve + restore must agree with the direct solve.
  rrp::Rng rng(61000 + static_cast<std::uint64_t>(GetParam()));
  LinearProgram lp;
  const std::size_t n = 4 + static_cast<std::size_t>(GetParam()) % 6;
  for (std::size_t j = 0; j < n; ++j) {
    if (rng.bernoulli(0.25)) {
      const double v = rng.uniform(-2.0, 2.0);
      lp.add_variable(v, v, rng.uniform(-2.0, 2.0));  // fixed
    } else {
      const double lo = rng.uniform(-2.0, 0.0);
      lp.add_variable(lo, lo + rng.uniform(0.5, 3.0),
                      rng.uniform(-2.0, 2.0));
    }
  }
  const std::size_t rows = 2 + static_cast<std::size_t>(GetParam()) % 4;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Entry> entries;
    for (std::size_t j = 0; j < n; ++j)
      if (rng.bernoulli(r == 0 ? 0.2 : 0.5))
        entries.push_back({j, rng.uniform(-2.0, 2.0)});
    if (entries.empty()) entries.push_back({0, 1.0});
    double mid = 0.0;
    for (const auto& e : entries)
      mid += e.coeff * 0.5 * (lp.variable(e.col).lo + lp.variable(e.col).hi);
    lp.add_row(std::move(entries), mid - rng.uniform(0.2, 2.0),
               mid + rng.uniform(0.2, 2.0));
  }

  const Solution direct = solve(lp);
  const Solution via_presolve = presolve_and_solve(lp);
  ASSERT_EQ(direct.status, via_presolve.status);
  if (direct.status == SolveStatus::Optimal) {
    EXPECT_NEAR(direct.objective, via_presolve.objective,
                1e-6 * (1.0 + std::fabs(direct.objective)));
    EXPECT_LT(lp.max_violation(via_presolve.x), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PresolveEquivalence,
                         ::testing::Range(0, 30));

class PresolveSparseEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PresolveSparseEquivalence, SolveMatchesDirectSolve) {
  // Programs rich in zero-cost columns, one-sided rows and infinite
  // bounds exercise the activity, forcing and column-singleton
  // reductions; statuses and optima must match the direct solve.
  rrp::Rng rng(72000 + static_cast<std::uint64_t>(GetParam()));
  LinearProgram lp;
  const std::size_t n = 5 + static_cast<std::size_t>(GetParam()) % 5;
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = rng.uniform(-2.0, 0.0);
    const double hi =
        rng.bernoulli(0.2) ? kInfinity : lo + rng.uniform(0.5, 4.0);
    const double obj = rng.bernoulli(0.3) ? 0.0 : rng.uniform(-2.0, 2.0);
    lp.add_variable(lo, hi, obj);
  }
  const std::size_t rows = 2 + static_cast<std::size_t>(GetParam()) % 4;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Entry> entries;
    for (std::size_t j = 0; j < n; ++j)
      if (rng.bernoulli(0.35)) entries.push_back({j, rng.uniform(-2.0, 2.0)});
    if (entries.empty()) entries.push_back({0, 1.0});
    double mid = 0.0;
    for (const auto& e : entries) {
      const auto& v = lp.variable(e.col);
      mid += e.coeff *
             (std::isfinite(v.hi) ? 0.5 * (v.lo + v.hi) : v.lo + 1.0);
    }
    const double lo =
        rng.bernoulli(0.25) ? -kInfinity : mid - rng.uniform(0.2, 2.0);
    lp.add_row(std::move(entries), lo, mid + rng.uniform(0.2, 2.0));
  }

  const Solution direct = solve(lp);
  const Solution via_presolve = presolve_and_solve(lp);
  ASSERT_EQ(direct.status, via_presolve.status);
  if (direct.status == SolveStatus::Optimal) {
    EXPECT_NEAR(direct.objective, via_presolve.objective,
                1e-6 * (1.0 + std::fabs(direct.objective)));
    EXPECT_LT(lp.max_violation(via_presolve.x), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PresolveSparseEquivalence,
                         ::testing::Range(0, 30));

}  // namespace
