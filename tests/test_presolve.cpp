#include "lp/presolve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "lp/simplex.hpp"

namespace {

using namespace rrp::lp;

TEST(Presolve, SingletonRowBecomesBound) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 10.0, 1.0, "x");
  const auto y = lp.add_variable(0.0, 10.0, 1.0, "y");
  lp.add_row({{x, 2.0}}, 4.0, 6.0);         // 2x in [4,6] -> x in [2,3]
  lp.add_row({{x, 1.0}, {y, 1.0}}, 5.0, kInfinity);
  const auto pre = presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.rows_removed, 1u);
  EXPECT_EQ(pre.reduced.num_rows(), 1u);
  // x survives with tightened bounds.
  ASSERT_EQ(pre.var_map.size(), 2u);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).lo, 2.0);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).hi, 3.0);
}

TEST(Presolve, NegativeCoefficientSingleton) {
  LinearProgram lp;
  const auto x = lp.add_variable(-10.0, 10.0, 1.0);
  lp.add_row({{x, -2.0}}, 2.0, 6.0);  // -2x in [2,6] -> x in [-3,-1]
  const auto pre = presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).lo, -3.0);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).hi, -1.0);
}

TEST(Presolve, FixedVariableSubstituted) {
  LinearProgram lp;
  const auto x = lp.add_variable(2.5, 2.5, 3.0, "x");  // fixed
  const auto y = lp.add_variable(0.0, 10.0, 1.0, "y");
  lp.add_row({{x, 2.0}, {y, 1.0}}, 7.0, kInfinity);  // => y >= 2
  const auto pre = presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  ASSERT_TRUE(pre.fixed[x].has_value());
  EXPECT_DOUBLE_EQ(*pre.fixed[x], 2.5);
  EXPECT_EQ(pre.vars_removed, 1u);
  EXPECT_NEAR(pre.objective_offset, 7.5, 1e-12);
  // Substitution shifts the row to y >= 2, which is itself a singleton
  // and collapses into y's lower bound.
  EXPECT_EQ(pre.reduced.num_rows(), 0u);
  ASSERT_EQ(pre.var_map.size(), 1u);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).lo, 2.0);
}

TEST(Presolve, CascadeSingletonFixesVariable) {
  // Singleton collapses x to a point; substitution turns the second
  // row into a singleton on y, tightening it too.
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 10.0, 1.0);
  const auto y = lp.add_variable(0.0, 10.0, 1.0);
  lp.add_row({{x, 1.0}}, 4.0, 4.0);            // x = 4
  lp.add_row({{x, 1.0}, {y, 1.0}}, 6.0, 9.0);  // => y in [2,5]
  const auto pre = presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_TRUE(pre.fixed[x].has_value());
  EXPECT_EQ(pre.reduced.num_rows(), 0u);
  ASSERT_EQ(pre.var_map.size(), 1u);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).lo, 2.0);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).hi, 5.0);
}

TEST(Presolve, DetectsBoundInfeasibility) {
  LinearProgram lp;
  const auto x = lp.add_variable(0.0, 1.0, 1.0);
  lp.add_row({{x, 1.0}}, 5.0, kInfinity);  // x >= 5 impossible
  const auto pre = presolve(lp);
  EXPECT_TRUE(pre.infeasible);
}

TEST(Presolve, DetectsEmptyRowInfeasibility) {
  LinearProgram lp;
  const auto x = lp.add_variable(3.0, 3.0, 1.0);  // fixed at 3
  lp.add_row({{x, 1.0}}, 5.0, 7.0);  // becomes empty row 0 in [2,4]
  const auto pre = presolve(lp);
  EXPECT_TRUE(pre.infeasible);
}

TEST(Presolve, RestoreLiftsSolutions) {
  LinearProgram lp;
  const auto x = lp.add_variable(1.5, 1.5, 1.0);
  const auto y = lp.add_variable(0.0, 10.0, 1.0);
  const auto z = lp.add_variable(0.0, 10.0, 2.0);
  lp.add_row({{y, 1.0}, {z, 1.0}}, 4.0, kInfinity);
  const auto pre = presolve(lp);
  ASSERT_EQ(pre.var_map.size(), 2u);
  const auto x_full = pre.restore({4.0, 0.0});
  EXPECT_DOUBLE_EQ(x_full[x], 1.5);
  EXPECT_DOUBLE_EQ(x_full[y], 4.0);
  EXPECT_DOUBLE_EQ(x_full[z], 0.0);
}

class PresolveEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PresolveEquivalence, SolveMatchesDirectSolve) {
  // Random programs rich in singletons and fixed variables: presolve +
  // solve + restore must agree with the direct solve.
  rrp::Rng rng(61000 + static_cast<std::uint64_t>(GetParam()));
  LinearProgram lp;
  const std::size_t n = 4 + static_cast<std::size_t>(GetParam()) % 6;
  for (std::size_t j = 0; j < n; ++j) {
    if (rng.bernoulli(0.25)) {
      const double v = rng.uniform(-2.0, 2.0);
      lp.add_variable(v, v, rng.uniform(-2.0, 2.0));  // fixed
    } else {
      const double lo = rng.uniform(-2.0, 0.0);
      lp.add_variable(lo, lo + rng.uniform(0.5, 3.0),
                      rng.uniform(-2.0, 2.0));
    }
  }
  const std::size_t rows = 2 + static_cast<std::size_t>(GetParam()) % 4;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Entry> entries;
    for (std::size_t j = 0; j < n; ++j)
      if (rng.bernoulli(r == 0 ? 0.2 : 0.5))
        entries.push_back({j, rng.uniform(-2.0, 2.0)});
    if (entries.empty()) entries.push_back({0, 1.0});
    double mid = 0.0;
    for (const auto& e : entries)
      mid += e.coeff * 0.5 * (lp.variable(e.col).lo + lp.variable(e.col).hi);
    lp.add_row(std::move(entries), mid - rng.uniform(0.2, 2.0),
               mid + rng.uniform(0.2, 2.0));
  }

  const Solution direct = solve(lp);
  const Solution via_presolve = presolve_and_solve(lp);
  ASSERT_EQ(direct.status, via_presolve.status);
  if (direct.status == SolveStatus::Optimal) {
    EXPECT_NEAR(direct.objective, via_presolve.objective,
                1e-6 * (1.0 + std::fabs(direct.objective)));
    EXPECT_LT(lp.max_violation(via_presolve.x), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PresolveEquivalence,
                         ::testing::Range(0, 30));

}  // namespace
