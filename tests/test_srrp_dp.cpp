// Validation of the exact scenario-tree dynamic program against the
// MILP deterministic equivalents, plus structural checks of its plans.
#include "core/srrp_dp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/demand.hpp"
#include "core/wagner_whitin.hpp"

namespace {

using namespace rrp::core;

SrrpInstance random_tree_instance(std::uint64_t seed, std::size_t stages,
                                  std::size_t branch, double eps) {
  rrp::Rng rng(seed);
  SrrpInstance inst;
  inst.demand = generate_demand(stages, DemandConfig{}, rng);
  std::vector<std::vector<PricePoint>> supports;
  for (std::size_t s = 0; s < stages; ++s) {
    std::vector<PricePoint> pts;
    double remaining = 1.0;
    for (std::size_t b = 0; b < branch; ++b) {
      const double prob =
          b + 1 == branch ? remaining : remaining * rng.uniform(0.3, 0.7);
      remaining -= b + 1 == branch ? 0.0 : prob;
      pts.push_back(PricePoint{rng.uniform(0.02, 0.6), prob, false});
    }
    // Sort ascending by price (ScenarioTree does not require it but the
    // distribution convention keeps things tidy); prices must differ.
    for (std::size_t b = 1; b < pts.size(); ++b)
      pts[b].price += 1e-4 * static_cast<double>(b);
    supports.push_back(std::move(pts));
  }
  inst.tree = ScenarioTree::build(supports);
  inst.initial_storage = eps;
  return inst;
}

class TreeDpAgreement : public ::testing::TestWithParam<int> {};

TEST_P(TreeDpAgreement, MatchesAggregatedMilp) {
  const double eps = GetParam() % 3 == 0 ? 0.0 : 0.1 * (GetParam() % 5);
  const auto inst = random_tree_instance(
      4000 + static_cast<std::uint64_t>(GetParam()), 3, 2, eps);
  const SrrpPolicy dp = solve_srrp_tree_dp(inst);
  const SrrpPolicy agg = solve_srrp(inst, {}, SrrpFormulation::Aggregated);
  ASSERT_TRUE(agg.feasible());
  EXPECT_NEAR(dp.expected_cost, agg.expected_cost,
              1e-6 * (1.0 + agg.expected_cost));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreeDpAgreement, ::testing::Range(0, 12));

TEST(TreeDp, MatchesStrengthenedMilpOnWiderTree) {
  const auto inst = random_tree_instance(4444, 4, 2, 0.25);
  const SrrpPolicy dp = solve_srrp_tree_dp(inst);
  const SrrpPolicy fl =
      solve_srrp(inst, {}, SrrpFormulation::FacilityLocation);
  ASSERT_TRUE(fl.feasible());
  EXPECT_NEAR(dp.expected_cost, fl.expected_cost,
              1e-5 * (1.0 + fl.expected_cost));
}

TEST(TreeDp, PlanSatisfiesTreeBalanceAndForcing) {
  const auto inst = random_tree_instance(4555, 4, 3, 0.2);
  const SrrpPolicy dp = solve_srrp_tree_dp(inst);
  for (std::size_t leaf : inst.tree.leaves()) {
    double store = inst.initial_storage;
    for (std::size_t v : inst.tree.path_from_root(leaf)) {
      const std::size_t slot = inst.tree.vertex(v).stage - 1;
      if (!dp.chi[v]) {
        EXPECT_NEAR(dp.alpha[v], 0.0, 1e-9);
      }
      store += dp.alpha[v] - inst.demand[slot];
      EXPECT_GT(store, -1e-7);
      store = std::max(store, 0.0);
      EXPECT_NEAR(store, dp.beta[v], 1e-7);
    }
  }
}

TEST(TreeDp, ExpectedCostMatchesManualAccounting) {
  const auto inst = random_tree_instance(4666, 3, 2, 0.0);
  const SrrpPolicy dp = solve_srrp_tree_dp(inst);
  double expected = 0.0;
  for (std::size_t v = 1; v < inst.tree.num_vertices(); ++v) {
    const auto& vert = inst.tree.vertex(v);
    const std::size_t slot = vert.stage - 1;
    expected += vert.path_prob *
                (inst.costs.generation_cost(dp.alpha[v], slot) +
                 inst.costs.holding(slot) * dp.beta[v] +
                 inst.costs.delivery_cost(inst.demand[slot], slot) +
                 (dp.chi[v] ? vert.price : 0.0));
  }
  EXPECT_NEAR(dp.expected_cost, expected, 1e-8);
}

TEST(TreeDp, ChainTreeEqualsWagnerWhitin) {
  // A tree with branching factor 1 is a deterministic chain: the tree
  // DP must coincide with the Wagner-Whitin DP on the induced DRRP.
  rrp::Rng rng(4777);
  const std::size_t T = 8;
  SrrpInstance inst;
  inst.demand = generate_demand(T, DemandConfig{}, rng);
  std::vector<std::vector<PricePoint>> supports;
  std::vector<double> prices;
  for (std::size_t t = 0; t < T; ++t) {
    prices.push_back(rng.uniform(0.05, 0.8));
    supports.push_back({PricePoint{prices.back(), 1.0, false}});
  }
  inst.tree = ScenarioTree::build(supports);
  inst.initial_storage = 0.3;
  const SrrpPolicy dp = solve_srrp_tree_dp(inst);

  DrrpInstance chain;
  chain.demand = inst.demand;
  chain.compute_price = prices;
  chain.initial_storage = 0.3;
  const RentalPlan ww = solve_drrp_wagner_whitin(chain);
  EXPECT_NEAR(dp.expected_cost, ww.cost.total(), 1e-8);
}

TEST(TreeDp, AdaptsProductionToBranchPrices) {
  // Cheap-vs-expensive stage-1 states: the DP must rent in the cheap
  // state and avoid the expensive one when storage suffices.
  SrrpInstance inst;
  inst.demand = {0.4, 0.4};
  std::vector<std::vector<PricePoint>> supports = {
      {PricePoint{0.02, 0.5, false}, PricePoint{1.5, 0.5, false}},
      {PricePoint{0.4, 1.0, false}}};
  inst.tree = ScenarioTree::build(supports);
  inst.initial_storage = 0.4;
  const SrrpPolicy dp = solve_srrp_tree_dp(inst);
  const auto& s1 = inst.tree.stage_vertices(1);
  EXPECT_EQ(dp.chi[s1[0]], 1);
  EXPECT_EQ(dp.chi[s1[1]], 0);
}

TEST(TreeDp, InventorySharingAcrossBranchesBeatsNaivePairwiseFl) {
  // The scenario that broke the naive pairwise facility location: one
  // unit of inventory produced up front serves slot-2 demand in BOTH
  // mutually exclusive branches; a formulation forcing per-branch
  // production would pay twice.  The DP must find the sharing plan.
  SrrpInstance inst;
  inst.demand = {0.0, 1.0};
  std::vector<std::vector<PricePoint>> supports = {
      {PricePoint{0.05, 0.5, false}, PricePoint{0.0501, 0.5, false}},
      {PricePoint{5.0, 1.0, false}}};  // slot 2 is prohibitive
  inst.tree = ScenarioTree::build(supports);
  const SrrpPolicy dp = solve_srrp_tree_dp(inst);
  // Production happens at stage 1 (price ~0.05) in both states --
  // total expected compute ~0.05, never ~5.
  EXPECT_LT(dp.expected_cost, 1.0);
  const SrrpPolicy agg = solve_srrp(inst, {}, SrrpFormulation::Aggregated);
  EXPECT_NEAR(dp.expected_cost, agg.expected_cost, 1e-6);
}

TEST(TreeDp, RejectsCapacitatedInstances) {
  auto inst = random_tree_instance(4888, 2, 2, 0.0);
  inst.bottleneck_rate = 1.0;
  inst.bottleneck_capacity.assign(2, 1.0);
  EXPECT_THROW(solve_srrp_tree_dp(inst), rrp::InvalidArgument);
}

TEST(TreeDpDeadline, ExpiredDeadlineThrows) {
  const auto inst = random_tree_instance(4901, 3, 2, 0.0);
  rrp::common::FakeClock clock(100.0);
  const auto d = rrp::common::Deadline::after(0.0, clock);
  EXPECT_THROW(solve_srrp_tree_dp(inst, d), rrp::TimeLimitExceeded);
}

TEST(TreeDpDeadline, GenerousDeadlineMatchesUnlimited) {
  const auto inst = random_tree_instance(4902, 3, 2, 0.2);
  rrp::common::FakeClock clock;
  const auto d = rrp::common::Deadline::after(1e9, clock);
  const SrrpPolicy bounded = solve_srrp_tree_dp(inst, d);
  const SrrpPolicy unbounded = solve_srrp_tree_dp(inst);
  EXPECT_NEAR(bounded.expected_cost, unbounded.expected_cost, 1e-12);
}

}  // namespace
