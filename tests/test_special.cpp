#include "common/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace {

namespace sp = rrp::special;

TEST(Special, NormalPdfAtZero) {
  EXPECT_NEAR(sp::normal_pdf(0.0), 0.3989422804014327, 1e-14);
}

TEST(Special, NormalCdfKnownValues) {
  EXPECT_NEAR(sp::normal_cdf(0.0), 0.5, 1e-14);
  EXPECT_NEAR(sp::normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(sp::normal_cdf(-1.959963984540054), 0.025, 1e-12);
  EXPECT_NEAR(sp::normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(Special, NormalQuantileRoundTrips) {
  for (double p : {0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999}) {
    EXPECT_NEAR(sp::normal_cdf(sp::normal_quantile(p)), p, 1e-12)
        << "p=" << p;
  }
}

TEST(Special, NormalQuantileKnownValues) {
  EXPECT_NEAR(sp::normal_quantile(0.975), 1.959963984540054, 1e-10);
  EXPECT_NEAR(sp::normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(sp::normal_quantile(0.05), -1.6448536269514722, 1e-10);
}

TEST(Special, NormalQuantileRejectsBoundary) {
  EXPECT_THROW(sp::normal_quantile(0.0), rrp::ContractViolation);
  EXPECT_THROW(sp::normal_quantile(1.0), rrp::ContractViolation);
}

TEST(Special, GammaPBoundaries) {
  EXPECT_DOUBLE_EQ(sp::gamma_p(1.0, 0.0), 0.0);
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(sp::gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(sp::gamma_p(1.0, 10.0), 1.0 - std::exp(-10.0), 1e-12);
}

TEST(Special, GammaPMonotoneInX) {
  double prev = 0.0;
  for (double x = 0.1; x < 20.0; x += 0.5) {
    const double v = sp::gamma_p(3.0, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_NEAR(prev, 1.0, 1e-4);
}

TEST(Special, ChiSquareCdfKnownValues) {
  // chi^2 with k=1: cdf(x) = erf(sqrt(x/2)).
  EXPECT_NEAR(sp::chi_square_cdf(3.841458820694124, 1.0), 0.95, 1e-9);
  // chi^2 with k=2 is exponential(1/2): cdf(x) = 1 - exp(-x/2).
  EXPECT_NEAR(sp::chi_square_cdf(5.991464547107979, 2.0), 0.95, 1e-9);
  EXPECT_NEAR(sp::chi_square_cdf(18.307038053275143, 10.0), 0.95, 1e-9);
}

TEST(Special, ChiSquareSfComplements) {
  for (double x : {0.5, 2.0, 7.5}) {
    EXPECT_NEAR(sp::chi_square_cdf(x, 4.0) + sp::chi_square_sf(x, 4.0), 1.0,
                1e-12);
  }
}

TEST(Special, ChiSquareCdfAtZeroAndNegative) {
  EXPECT_DOUBLE_EQ(sp::chi_square_cdf(0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(sp::chi_square_cdf(-1.0, 3.0), 0.0);
}

}  // namespace
