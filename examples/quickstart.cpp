// Quickstart: plan one day of rentals for a single VM class with DRRP.
//
// Builds the paper's deterministic model (Section III) for 24 hourly
// slots of N(0.4, 0.2) GB demand on an m1.large instance, solves it
// with the bundled branch & bound, and prints the schedule next to the
// no-planning baseline.
//
//   ./examples/quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/demand.hpp"
#include "core/drrp.hpp"
#include "market/instance_types.hpp"

int main(int argc, char** argv) {
  using namespace rrp;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  Rng rng(seed);

  // 1. Describe the planning problem: demand, prices, cost model.
  core::DrrpInstance instance;
  instance.vm = market::VmClass::M1Large;
  instance.demand = core::generate_demand(24, core::DemandConfig{}, rng);
  instance.compute_price.assign(
      24, market::info(instance.vm).on_demand_hourly);
  instance.costs = market::CostModel::paper_defaults();

  // 2. Solve DRRP and compute the no-planning baseline.
  const core::RentalPlan plan = core::solve_drrp(instance);
  const core::RentalPlan naive = core::no_plan_schedule(instance);
  if (!plan.feasible()) {
    std::cerr << "solver failed: " << milp::to_string(plan.status) << "\n";
    return 1;
  }

  // 3. Show the hourly schedule.
  Table schedule("DRRP schedule for m1.large (24 hourly slots)");
  schedule.set_header({"hour", "demand(GB)", "rent", "generate(GB)",
                       "inventory(GB)"});
  for (std::size_t t = 0; t < 24; ++t) {
    schedule.add_row({std::to_string(t), Table::num(instance.demand[t], 3),
                      plan.chi[t] ? "yes" : "-", Table::num(plan.alpha[t], 3),
                      Table::num(plan.beta[t], 3)});
  }
  schedule.print(std::cout);

  // 4. Compare costs.
  Table costs("Daily per-instance cost: DRRP vs no planning");
  costs.set_header({"scheme", "compute", "I/O+storage", "transfer",
                    "total"});
  auto row = [&costs](const char* name, const core::CostBreakdown& c) {
    costs.add_row({name, Table::num(c.compute, 3), Table::num(c.holding, 3),
                   Table::num(c.transfer(), 3), Table::num(c.total(), 3)});
  };
  row("no-plan", naive.cost);
  row("DRRP", plan.cost);
  costs.print(std::cout);

  std::cout << "cost ratio (DRRP / no-plan): "
            << Table::pct(plan.cost.total() / naive.cost.total()) << "\n";
  return 0;
}
