// Cost-parameter sensitivity explorer (paper Section V-B, Figure 11).
//
// Sweeps the compute price, the I/O price and the demand mean around
// the paper's base configuration and prints the DRRP-to-no-plan cost
// ratio for each setting — the quantity whose trends Figure 11 plots.
//
//   ./examples/sensitivity_explorer [trials-per-point]
#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/demand.hpp"
#include "core/drrp.hpp"

namespace {

using namespace rrp;

double mean_cost_ratio(double compute_price, double io_scale,
                       double demand_mean, int trials,
                       std::uint64_t seed) {
  Rng rng(seed);
  double ratio_sum = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    core::DrrpInstance inst;
    core::DemandConfig demand;
    demand.mean = demand_mean;
    demand.sd = 0.2;
    Rng trial_rng = rng.split();
    inst.demand = core::generate_demand(24, demand, trial_rng);
    inst.compute_price.assign(24, compute_price);
    inst.costs = market::CostModel::paper_defaults().with_io_scaled(io_scale);
    const double optimal = core::solve_drrp(inst).cost.total();
    const double naive = core::no_plan_schedule(inst).cost.total();
    ratio_sum += optimal / naive;
  }
  return ratio_sum / trials;
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 5;

  Table cpu("Cost ratio vs compute price (m1.large base = 0.4, demand 0.4)");
  cpu.set_header({"compute $/h", "DRRP / no-plan"});
  for (double cp : {0.1, 0.2, 0.4, 0.8, 1.2, 1.6}) {
    cpu.add_row({Table::num(cp, 1),
                 Table::pct(mean_cost_ratio(cp, 1.0, 0.4, trials, 100))});
  }
  cpu.print(std::cout);

  Table io("Cost ratio vs I/O price scale (compute fixed at 0.4)");
  io.set_header({"I/O scale", "DRRP / no-plan"});
  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    io.add_row({Table::num(scale, 2),
                Table::pct(mean_cost_ratio(0.4, scale, 0.4, trials, 200))});
  }
  io.print(std::cout);

  Table dm("Cost ratio vs demand mean (compute 0.4, I/O scale 1)");
  dm.set_header({"demand GB/h", "DRRP / no-plan"});
  for (double mean : {0.2, 0.4, 0.8, 1.2, 1.6}) {
    dm.add_row({Table::num(mean, 1),
                Table::pct(mean_cost_ratio(0.4, 1.0, mean, trials, 300))});
  }
  dm.print(std::cout);

  std::cout << "Expected trends (paper Fig. 11): savings grow with the\n"
               "compute price, shrink as I/O gets dearer, and vanish as\n"
               "demand keeps the instance busy every slot.\n";
  return 0;
}
