// Fleet planning: the paper's multi-class objective end to end.
//
// An ASP serves three workloads on {c1.medium, m1.large, m1.xlarge}
// fleets of different sizes (Section III-B: each instance serves 1/n of
// its class's demand).  This example plans a day for the whole fleet
// and prints the per-class schedules' cost decomposition next to the
// no-planning baseline.
//
//   ./examples/fleet_planning [seed]
#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/demand.hpp"
#include "core/fleet.hpp"

int main(int argc, char** argv) {
  using namespace rrp;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2012;
  Rng rng(seed);

  // Fleet: 8 x c1.medium (bursty light demand), 4 x m1.large (steady),
  // 2 x m1.xlarge (heavy batch).
  std::vector<core::FleetEntry> fleet(3);
  const std::size_t sizes[] = {8, 4, 2};
  const double per_instance_mean[] = {0.3, 0.5, 0.8};
  const auto classes = market::evaluation_classes();
  for (std::size_t i = 0; i < 3; ++i) {
    fleet[i].vm = classes[i];
    fleet[i].instances = sizes[i];
    core::DemandConfig cfg;
    cfg.mean = per_instance_mean[i] * static_cast<double>(sizes[i]);
    cfg.sd = cfg.mean / 2.0;
    Rng stream = rng.split();
    fleet[i].total_demand = core::generate_demand(24, cfg, stream);
  }

  const core::FleetPlan planned = core::plan_fleet(fleet);
  const core::FleetPlan naive = core::no_plan_fleet(fleet);

  Table table("Fleet plan: 24h, " +
              std::to_string(8 + 4 + 2) + " instances across 3 classes");
  table.set_header({"class", "n", "per-inst cost", "class cost",
                    "no-plan class cost", "saving"});
  for (std::size_t i = 0; i < planned.classes.size(); ++i) {
    const auto& c = planned.classes[i];
    const double baseline = naive.classes[i].class_cost.total();
    table.add_row(
        {std::string(market::info(c.vm).name), std::to_string(c.instances),
         Table::num(c.per_instance.cost.total(), 3),
         Table::num(c.class_cost.total(), 2), Table::num(baseline, 2),
         Table::pct(1.0 - c.class_cost.total() / baseline)});
  }
  table.print(std::cout);

  std::cout << "fleet total: " << Table::num(planned.total_cost(), 2)
            << " vs no-plan " << Table::num(naive.total_cost(), 2)
            << "  (saving "
            << Table::pct(1.0 - planned.total_cost() / naive.total_cost())
            << ")\n";
  return 0;
}
