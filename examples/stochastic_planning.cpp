// Stochastic vs deterministic planning under spot-price uncertainty
// (paper Section V-C).
//
// Simulates two days of hourly rentals for one VM class under every
// Figure 12(a) policy, against a synthetic spot market, and reports
// realised cost and overpay relative to the perfect-foresight oracle.
//
//   ./examples/stochastic_planning [vm-class] [seed]
//   e.g. ./examples/stochastic_planning m1.large 7
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/demand.hpp"
#include "core/rolling_horizon.hpp"
#include "market/trace_generator.hpp"

int main(int argc, char** argv) {
  using namespace rrp;

  const market::VmClass vm =
      argc > 1 ? market::from_name(argv[1]) : market::VmClass::M1Large;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // Market history feeds the price distribution and the SARIMA bids;
  // the following 48 hours are the evaluation window.
  const auto trace = market::generate_trace(vm, seed);
  const auto hourly = trace.hourly();
  const std::size_t history_hours = 24 * 60;
  const std::size_t eval_hours = 48;

  core::SimulationInputs inputs;
  inputs.vm = vm;
  inputs.history.assign(hourly.begin(),
                        hourly.begin() + static_cast<long>(history_hours));
  inputs.actual_spot.assign(
      hourly.begin() + static_cast<long>(history_hours),
      hourly.begin() + static_cast<long>(history_hours + eval_hours));
  Rng rng(seed * 31 + 1);
  inputs.demand = core::generate_demand(eval_hours, core::DemandConfig{},
                                        rng);

  std::cout << "class " << market::info(vm).name << ", " << eval_hours
            << "h evaluation window, spot range ["
            << Table::num(*std::min_element(inputs.actual_spot.begin(),
                                            inputs.actual_spot.end()),
                          3)
            << ", "
            << Table::num(*std::max_element(inputs.actual_spot.begin(),
                                            inputs.actual_spot.end()),
                          3)
            << "]\n\n";

  const double ideal = core::ideal_case_cost(inputs);

  Table table("Policy comparison (vs ideal-case cost " +
              Table::num(ideal, 3) + ")");
  table.set_header({"policy", "total", "compute", "holding", "out-of-bid",
                    "overpay"});
  auto report = [&](const core::PolicyConfig& policy) {
    const auto result = core::simulate_policy(inputs, policy);
    table.add_row(
        {policy.name, Table::num(result.total_cost(), 3),
         Table::num(result.cost.compute, 3),
         Table::num(result.cost.holding, 3),
         std::to_string(result.out_of_bid_events),
         Table::pct(core::overpay_fraction(result.total_cost(), ideal))});
  };
  for (const auto& policy : core::figure12a_policies()) report(policy);
  table.print(std::cout);

  std::cout << "Expected ordering: on-demand overpays most; each sto-* "
               "policy beats its det-* counterpart.\n";
  return 0;
}
