// Spot-market analysis walkthrough (paper Section IV-A).
//
// Generates (or loads) a spot-price trace, regularises it to an hourly
// series, and runs the predictability pipeline: outlier summary,
// seasonal decomposition, ACF/PACF inspection, normality testing, and
// a day-ahead SARIMA forecast scored against the mean predictor.
//
//   ./examples/spot_market_analysis [trace.csv]
//
// With a CSV argument ("time_hours,price" rows) a real trace is used
// instead of the synthetic one.
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "market/trace_generator.hpp"
#include "timeseries/acf.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/auto_arima.hpp"
#include "timeseries/decompose.hpp"
#include "timeseries/diagnostics.hpp"

int main(int argc, char** argv) {
  using namespace rrp;
  namespace stats = rrp::stats;

  const market::SpotTrace trace =
      argc > 1 ? market::SpotTrace::load_csv(argv[1],
                                             market::VmClass::C1Medium)
               : market::generate_trace(market::VmClass::C1Medium, 2012);

  std::cout << "trace: " << trace.ticks().size() << " updates over "
            << Table::num(trace.duration_hours() / 24.0, 1) << " days\n\n";

  // Marginal distribution and outliers (paper Fig. 3/5).
  const auto prices = trace.prices();
  const auto box = stats::box_summary(prices);
  Table dist("Price distribution");
  dist.set_header({"min", "q1", "median", "q3", "max", "outliers"});
  dist.add_row({Table::num(box.min, 4), Table::num(box.q1, 4),
                Table::num(box.median, 4), Table::num(box.q3, 4),
                Table::num(box.max, 4), Table::pct(box.outlier_fraction, 2)});
  dist.print(std::cout);

  const auto sw = ts::shapiro_wilk(
      std::span(prices).subspan(0, std::min<std::size_t>(prices.size(),
                                                         5000)));
  std::cout << "Shapiro-Wilk: W=" << Table::num(sw.statistic, 4)
            << " p=" << Table::num(sw.p_value, 6)
            << (sw.p_value < 0.05 ? "  -> not normal (as in the paper)\n\n"
                                  : "\n\n");

  // Two months of hourly prices, as the paper's representative window.
  const auto hourly = trace.hourly(0, 24 * 61);
  std::cout << "hourly series (first 61 days): "
            << sparkline(hourly) << "\n\n";

  // Seasonal decomposition (Fig. 6).
  const auto dec = ts::decompose_additive(hourly, 24);
  std::cout << "seasonal profile (period 24): "
            << sparkline(dec.seasonal_profile(), 24) << "\n";

  // ACF / PACF with the 95% white-noise band (Fig. 7).
  const auto r = ts::acf(hourly, 30);
  const auto p = ts::pacf(hourly, 30);
  const double band = ts::white_noise_band(hourly.size());
  Table corr("Autocorrelation (band = +/-" + Table::num(band, 3) + ")");
  corr.set_header({"lag", "acf", "pacf", "significant"});
  for (std::size_t k : {1u, 2u, 3u, 6u, 12u, 24u}) {
    corr.add_row({std::to_string(k), Table::num(r[k], 3),
                  Table::num(p[k - 1], 3),
                  std::abs(r[k]) > band ? "yes" : "no"});
  }
  corr.print(std::cout);

  // Day-ahead forecast (Fig. 8): fit on days 1..60, predict day 61.
  std::vector<double> train(hourly.begin(), hourly.end() - 24);
  std::vector<double> test(hourly.end() - 24, hourly.end());
  ts::AutoArimaOptions auto_opt;
  auto_opt.seasonal_period = 24;
  auto_opt.max_p = 2;
  auto_opt.max_q = 2;
  auto_opt.max_P = 2;
  auto_opt.max_Q = 0;
  auto_opt.d = 0;
  auto_opt.D = 0;
  auto_opt.fit.optimizer.max_evaluations = 3000;
  const auto chosen = ts::auto_arima(train, auto_opt);
  const auto& order = chosen.model.order;
  std::cout << "auto.arima selected SARIMA(" << order.p << ",0," << order.q
            << ")(" << order.P << ",0," << order.Q << ")_24 from "
            << chosen.models_evaluated << " candidates (AICc "
            << Table::num(chosen.model.aicc, 1) << ")\n";

  const auto predicted = ts::forecast(chosen.model, train, 24);
  const auto mean_pred = ts::mean_forecast(train, 24);
  std::cout << "day-ahead MSPE: SARIMA "
            << Table::num(stats::mse(test, predicted) * 1e6, 3)
            << "e-6 vs mean-predictor "
            << Table::num(stats::mse(test, mean_pred) * 1e6, 3)
            << "e-6  -> prediction barely beats the mean, motivating "
               "stochastic planning\n";
  return 0;
}
